"""Repository hygiene: no build artifacts tracked, packages complete.

An orphaned ``src/repro/serve/__pycache__/`` directory once shipped a
package whose *source* had been deleted — imports kept working locally
(Python happily loads the stale ``.pyc``) while every fresh checkout
broke.  These checks make that class of accident loud.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tracked_files() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, check=True,
        capture_output=True, text=True,
    )
    return out.stdout.splitlines()


def test_no_tracked_build_artifacts():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in path
        or path.endswith((".pyc", ".pyo", ".orig", ".rej"))
    ]
    assert not offenders, f"build artifacts under version control: {offenders}"


def test_every_package_directory_has_real_sources():
    """No package may exist only as cached bytecode."""
    src = REPO_ROOT / "src" / "repro"
    for directory in [src, *src.rglob("*/")]:
        directory = Path(directory)
        if directory.name == "__pycache__":
            continue
        sources = [
            p for p in directory.glob("*.py") if p.name != "__init__.py"
        ]
        has_init = (directory / "__init__.py").exists()
        subpackages = [
            d for d in directory.iterdir()
            if d.is_dir() and d.name != "__pycache__"
        ]
        assert has_init, f"{directory} lacks __init__.py"
        assert sources or subpackages, (
            f"{directory} has no Python sources — orphaned package?"
        )


def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__" in gitignore
