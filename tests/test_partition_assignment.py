"""Unit tests for PartitionAssignment and static metrics."""

import pytest

from repro.errors import PartitionError
from repro.partition import PartitionAssignment, edge_cut, load_imbalance
from repro.partition.metrics import (
    concurrency_score,
    cut_fraction,
    external_messages_upper_bound,
    gain_of_move,
    partition_quality,
)


class TestAssignment:
    def test_from_blocks(self, s27):
        n = s27.num_gates
        blocks = [range(0, n // 2), range(n // 2, n)]
        a = PartitionAssignment.from_blocks(s27, blocks, algorithm="manual")
        assert a.k == 2
        assert sum(a.sizes()) == n
        a.validate()

    def test_from_blocks_rejects_overlap(self, s27):
        with pytest.raises(PartitionError, match="assigned to partitions"):
            PartitionAssignment.from_blocks(s27, [[0, 1], [1, 2]])

    def test_from_blocks_rejects_gap(self, s27):
        with pytest.raises(PartitionError, match="unassigned"):
            PartitionAssignment.from_blocks(
                s27, [[0], list(range(2, s27.num_gates))]
            )

    def test_from_mapping(self, s27):
        mapping = {i: i % 3 for i in range(s27.num_gates)}
        a = PartitionAssignment.from_mapping(s27, 3, mapping)
        a.validate()
        assert a[4] == 1

    def test_validate_rejects_out_of_range(self, s27):
        a = PartitionAssignment(s27, 2, [0] * s27.num_gates)
        a.assignment[3] = 7
        with pytest.raises(PartitionError, match="legal range"):
            a.validate()

    def test_validate_rejects_empty_partition(self, s27):
        a = PartitionAssignment(s27, 2, [0] * s27.num_gates)
        with pytest.raises(PartitionError, match="empty"):
            a.validate()

    def test_wrong_length_rejected(self, s27):
        with pytest.raises(PartitionError, match="covers"):
            PartitionAssignment(s27, 2, [0, 1])

    def test_parts_inverse_of_assignment(self, s27):
        a = PartitionAssignment(
            s27, 3, [i % 3 for i in range(s27.num_gates)]
        )
        for part, members in enumerate(a.parts()):
            assert all(a[g] == part for g in members)

    def test_relabel_merges(self, s27):
        a = PartitionAssignment(s27, 4, [i % 4 for i in range(s27.num_gates)])
        merged = a.relabel(2, [0, 0, 1, 1])
        assert merged.k == 2
        assert set(merged.assignment) == {0, 1}


class TestMetrics:
    def test_single_partition_has_zero_cut(self, s27):
        a = PartitionAssignment(s27, 1, [0] * s27.num_gates)
        assert edge_cut(a) == 0
        assert cut_fraction(a) == 0.0
        assert external_messages_upper_bound(a) == 0

    def test_cut_counts_cross_edges(self, s27):
        # put one specific gate alone in partition 1
        g = s27.index_of("G9")
        assignment = [0] * s27.num_gates
        assignment[g] = 1
        a = PartitionAssignment(s27, 2, assignment)
        degree = len(s27.fanin(g)) + len(s27.fanout(g))
        assert edge_cut(a) == degree

    def test_perfect_balance_is_one(self, s27):
        # s27 has 17 gates; a 17-way split is perfectly balanced.
        a = PartitionAssignment(s27, 17, list(range(17)))
        assert load_imbalance(a) == pytest.approx(1.0)

    def test_imbalance_grows_with_skew(self, s27):
        n = s27.num_gates
        skew = [0] * (n - 1) + [1]
        a = PartitionAssignment(s27, 2, skew)
        assert load_imbalance(a) == pytest.approx((n - 1) / (n / 2))

    def test_concurrency_bounds(self, medium_circuit):
        import numpy as np

        rng = np.random.default_rng(0)
        a = PartitionAssignment(
            medium_circuit,
            4,
            [int(rng.integers(0, 4)) for _ in range(medium_circuit.num_gates)],
        )
        assert 0.0 < concurrency_score(a) <= 1.0

    def test_quality_dataclass_fields(self, s27):
        a = PartitionAssignment(
            s27, 2, [i % 2 for i in range(s27.num_gates)], algorithm="alt"
        )
        q = partition_quality(a)
        assert q.algorithm == "alt"
        assert q.k == 2
        assert q.edge_cut == edge_cut(a)
        assert sum(q.sizes) == s27.num_gates

    def test_gain_of_move_matches_cut_delta(self, s27):
        assignment = [i % 2 for i in range(s27.num_gates)]
        a = PartitionAssignment(s27, 2, list(assignment))
        before = edge_cut(a)
        gate = s27.index_of("G15")
        gain = gain_of_move(s27, assignment, gate, 1 - assignment[gate])
        assignment[gate] = 1 - assignment[gate]
        after = edge_cut(PartitionAssignment(s27, 2, assignment))
        assert before - after == gain
