"""Cross-cutting invariants for all six partitioning algorithms."""

import pytest

from repro.errors import PartitionError
from repro.partition import (
    PARTITIONERS,
    edge_cut,
    get_partitioner,
    load_imbalance,
)

ALL_NAMES = sorted(PARTITIONERS)


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("k", [1, 2, 4, 8])
class TestUniversalInvariants:
    def test_valid_complete_assignment(self, name, k, medium_circuit):
        a = get_partitioner(name, seed=11).partition(medium_circuit, k)
        a.validate()
        assert a.k == k
        assert len(a) == medium_circuit.num_gates

    def test_no_empty_partition(self, name, k, medium_circuit):
        a = get_partitioner(name, seed=11).partition(medium_circuit, k)
        assert all(size > 0 for size in a.sizes())

    def test_single_partition_zero_cut(self, name, k, medium_circuit):
        if k != 1:
            pytest.skip("only meaningful for k=1")
        a = get_partitioner(name, seed=11).partition(medium_circuit, 1)
        assert edge_cut(a) == 0


@pytest.mark.parametrize("name", ALL_NAMES)
class TestDeterminism:
    def test_same_seed_same_partition(self, name, medium_circuit):
        a = get_partitioner(name, seed=3).partition(medium_circuit, 4)
        b = get_partitioner(name, seed=3).partition(medium_circuit, 4)
        assert a.assignment == b.assignment

    def test_algorithm_label(self, name, medium_circuit):
        a = get_partitioner(name, seed=3).partition(medium_circuit, 2)
        assert a.algorithm == PARTITIONERS[name].name


@pytest.mark.parametrize("name", ALL_NAMES)
class TestBalance:
    def test_imbalance_bounded(self, name, medium_circuit):
        a = get_partitioner(name, seed=5).partition(medium_circuit, 4)
        # All algorithms aim for ~10% slack; allow some headroom for the
        # chunk-granularity of traversal partitioners.
        assert load_imbalance(a) <= 1.35


class TestEdgeCases:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_k_equals_num_gates(self, name, s27):
        a = get_partitioner(name, seed=1).partition(s27, s27.num_gates)
        assert sorted(a.assignment) == list(range(s27.num_gates))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_k_too_large_rejected(self, name, s27):
        with pytest.raises(PartitionError):
            get_partitioner(name, seed=1).partition(s27, s27.num_gates + 1)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_k_zero_rejected(self, name, s27):
        with pytest.raises(PartitionError):
            get_partitioner(name, seed=1).partition(s27, 0)

    def test_unknown_name_rejected(self):
        with pytest.raises(PartitionError, match="unknown partitioner"):
            get_partitioner("Magic")

    def test_unfrozen_circuit_rejected(self):
        from repro.circuit import CircuitGraph, GateType

        c = CircuitGraph()
        c.add_gate("a", GateType.INPUT)
        with pytest.raises(PartitionError, match="frozen"):
            get_partitioner("Random").partition(c, 1)


class TestRelativeQuality:
    """The static-quality ordering the paper's dynamics rest on."""

    def test_multilevel_cuts_less_than_random(self, medium_circuit):
        ml = get_partitioner("Multilevel", seed=2).partition(medium_circuit, 8)
        rnd = get_partitioner("Random", seed=2).partition(medium_circuit, 8)
        assert edge_cut(ml) < edge_cut(rnd)

    def test_multilevel_cuts_less_than_topological(self, medium_circuit):
        ml = get_partitioner("Multilevel", seed=2).partition(medium_circuit, 8)
        topo = get_partitioner("Topological", seed=2).partition(medium_circuit, 8)
        assert edge_cut(ml) < edge_cut(topo)

    def test_topological_cut_is_highest_tier(self, medium_circuit):
        topo = edge_cut(
            get_partitioner("Topological", seed=2).partition(medium_circuit, 8)
        )
        dfs = edge_cut(get_partitioner("DFS", seed=2).partition(medium_circuit, 8))
        assert topo > dfs
