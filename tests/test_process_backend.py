"""Unit and integration tests for the multiprocess Time Warp backend.

Three layers, cheapest first: the GVT token protocol as pure logic, the
per-node engine driven transport-free inside one process, and the real
``multiprocessing`` backend end to end (separate OS pids and all).
Cross-backend result equivalence lives in
``test_differential_backends.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigError, SimulationError
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine
from repro.warped.messages import Message
from repro.warped.parallel import GvtClerk, GvtToken, NodeEngine
from repro.warped.parallel.protocol import T_INF


# ----------------------------------------------------------------------
# GVT protocol logic (no processes, no queues)
# ----------------------------------------------------------------------
class TestGvtProtocol:
    def test_send_receive_balance(self):
        clerk = GvtClerk(node=0)
        assert clerk.note_send(100) == 0  # color = not-yet-joined cid 0
        clerk.note_send(50)
        clerk.note_receive(0)
        # Computation 1: the two sends and one receive are all white.
        assert clerk.white_balance(1) == 1

    def test_fold_token_turns_red_and_tracks_send_min(self):
        clerk = GvtClerk(node=1)
        clerk.note_send(40)                      # white for cid 1
        token = GvtToken(cid=1)
        clerk.fold_token(token, local_min=75.0)
        assert clerk.cur_cid == 1
        assert token.m_clock == 75.0
        assert token.m_send == T_INF             # nothing sent red yet
        assert token.count == 1                  # the white send
        clerk.note_send(60)                      # now colored 1 = red
        token2 = GvtToken(cid=1)
        clerk.fold_token(token2, local_min=75.0)
        assert token2.m_send == 60

    def test_conclusive_round_yields_min(self):
        token = GvtToken(cid=3)
        token.fold(local_min=120.0, red_min=90.0, white_balance=0)
        token.fold(local_min=80.0, red_min=T_INF, white_balance=0)
        assert token.conclusive
        assert token.gvt == 80.0

    def test_inconclusive_round_when_whites_in_flight(self):
        sender = GvtClerk(node=0)
        receiver = GvtClerk(node=1)
        sender.note_send(10)  # in flight: receiver has not seen it
        token = GvtToken(cid=1)
        sender.fold_token(token, local_min=T_INF)
        receiver.fold_token(token, local_min=T_INF)
        assert not token.conclusive  # count == 1: retry the round
        receiver.note_receive(0)
        token2 = GvtToken(cid=1)
        sender.fold_token(token2, local_min=T_INF)
        receiver.fold_token(token2, local_min=T_INF)
        assert token2.conclusive
        assert token2.gvt == T_INF

    def test_two_node_ring_quiesces_to_infinity(self):
        """Full protocol walk: messages drain, then GVT proves it."""
        clerks = [GvtClerk(node=i) for i in range(2)]
        color = clerks[0].note_send(30)
        clerks[1].note_receive(color)
        for cid in (1, 2):
            token = GvtToken(cid=cid)
            for clerk in clerks:
                clerk.fold_token(token, local_min=T_INF)
            assert token.conclusive
            assert token.gvt == T_INF
            clerks[0].forget_before(cid)

    def test_forget_before_preserves_balances(self):
        clerk = GvtClerk(node=0)
        clerk.note_send(10)
        clerk.cur_cid = 1
        clerk.note_send(20)
        clerk.cur_cid = 5
        clerk.note_receive(0)
        before = clerk.white_balance(6)
        clerk.forget_before(5)
        assert clerk.white_balance(6) == before
        assert len(clerk.sent) <= 2


# ----------------------------------------------------------------------
# NodeEngine, transport-free (deterministic in-process shuttling)
# ----------------------------------------------------------------------
def _drive_engines(circuit, assignment, k, stimulus):
    """Run k engines to quiescence, shuttling outboxes by hand.

    Each round's messages are held back one round, which manufactures
    stragglers and exercises the rollback/anti-message paths.
    """
    engines = [
        NodeEngine(circuit, assignment, node, k, stimulus) for node in range(k)
    ]
    for engine in engines:
        engine.schedule_initial()
    in_flight: list[tuple[int, Message]] = []
    for _ in range(200_000):
        delivering, in_flight = in_flight, []
        for dest, msg in delivering:
            engines[dest].handle_remote(msg)
        for engine in engines:
            for _ in range(4):
                if engine.min_pending() is None:
                    break
                engine.process_one()
            in_flight.extend(engine.outbox)
            engine.outbox.clear()
        if not in_flight and all(e.min_pending() is None for e in engines):
            break
    else:  # pragma: no cover - would be a livelock bug
        raise AssertionError("engines failed to quiesce")
    for engine in engines:
        engine.check_quiescent()
    return engines


class TestNodeEngine:
    @pytest.mark.parametrize("k", [2, 3])
    def test_engines_reach_sequential_fixpoint(self, s27, k):
        stimulus = RandomStimulus(s27, num_cycles=15, period=20, seed=11)
        sequential = SequentialSimulator(s27, stimulus).run()
        assignment = get_partitioner("DFS", seed=1).partition(s27, k)
        engines = _drive_engines(s27, assignment.assignment, k, stimulus)
        values = {}
        captures = {}
        for engine in engines:
            values.update(engine.final_values())
            captures.update(engine.capture_log)
        assert [values[i] for i in range(s27.num_gates)] == sequential.final_values
        assert sorted(
            (g, c, v) for (g, c), v in captures.items()
        ) == sequential.committed_captures

    def test_delayed_delivery_causes_rollbacks(self, s27):
        stimulus = RandomStimulus(s27, num_cycles=15, period=20, seed=11)
        assignment = get_partitioner("Random", seed=4).partition(s27, 3)
        engines = _drive_engines(s27, assignment.assignment, 3, stimulus)
        assert sum(e.counters["rollbacks"] for e in engines) > 0

    def test_misrouted_message_rejected(self, s27):
        stimulus = RandomStimulus(s27, num_cycles=3, seed=0)
        assignment = get_partitioner("Random", seed=4).partition(s27, 2)
        engine = NodeEngine(s27, assignment.assignment, 0, 2, stimulus)
        foreign = next(
            i for i, node in enumerate(assignment.assignment) if node == 1
        )
        with pytest.raises(SimulationError, match="owned by node"):
            engine.handle_remote(Message(5, 2, 0, 0, 1, foreign, 999))


# ----------------------------------------------------------------------
# The real multiprocess backend
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def s27_setup():
    from repro.circuit.netlists import load_s27

    circuit = load_s27()
    stimulus = RandomStimulus(circuit, num_cycles=20, period=20, seed=5)
    sequential = SequentialSimulator(circuit, stimulus).run()
    return circuit, stimulus, sequential


class TestProcessBackend:
    def test_runs_on_distinct_os_processes(self, s27_setup):
        circuit, stimulus, sequential = s27_setup
        assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 2)
        sim = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, VirtualMachine(num_nodes=2, gvt_interval=32)
        )
        result = sim.run()
        assert result.backend == "process"
        assert len(set(sim.worker_pids.values())) == 2
        assert os.getpid() not in sim.worker_pids.values()
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures

    def test_stats_shapes_match_virtual_backend(self, s27_setup):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Cluster", seed=3).partition(circuit, 3)
        machine = VirtualMachine(num_nodes=3, gvt_interval=32)
        result = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine
        ).run()
        assert len(result.node_stats) == 3
        assert [s.node for s in result.node_stats] == [0, 1, 2]
        assert sum(s.num_lps for s in result.node_stats) == circuit.num_gates
        assert sum(s.events_processed for s in result.node_stats) == (
            result.events_processed
        )
        assert result.events_committed > 0
        assert result.gvt_rounds >= 1
        assert all(s.wall_time > 0 for s in result.node_stats)
        assert 0 < result.efficiency <= 1.0
        # The summary line renders without error on measured numbers.
        assert circuit.name in result.summary()

    def test_optimism_window_respected(self, s27_setup):
        circuit, stimulus, sequential = s27_setup
        assignment = get_partitioner("Topological", seed=3).partition(circuit, 2)
        machine = VirtualMachine(
            num_nodes=2, gvt_interval=16, optimism_window=40
        )
        result = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine
        ).run()
        assert result.final_values == sequential.final_values

    def test_single_node_degenerate_ring(self, s27_setup):
        circuit, stimulus, sequential = s27_setup
        assignment = get_partitioner("Random", seed=1).partition(circuit, 1)
        result = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, VirtualMachine(num_nodes=1)
        ).run()
        assert result.final_values == sequential.final_values
        assert result.rollbacks == 0
        assert result.app_messages == 0

    def test_rejects_unsupported_policies(self, s27_setup):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Random", seed=1).partition(circuit, 2)

        def build(**kw):
            return ProcessTimeWarpSimulator(
                circuit, assignment, stimulus,
                VirtualMachine(num_nodes=2, **kw),
            )

        with pytest.raises(ConfigError, match="aggressive"):
            build(cancellation="lazy")
        # migration_threshold is no longer rejected: the process backend
        # now migrates LPs at GVT epochs (see TestProcessMigration).
        build(migration_threshold=1.5)
        # checkpoint_interval is no longer rejected: it now selects
        # crash-recovery checkpoint epochs (see test_recovery.py).
        build(checkpoint_interval=8)
        # ... but a restart budget without checkpoints to restart from is.
        with pytest.raises(ConfigError, match="max_restarts"):
            ProcessTimeWarpSimulator(
                circuit, assignment, stimulus,
                VirtualMachine(num_nodes=2), max_restarts=1,
            )

    def test_rejects_node_count_mismatch(self, s27_setup):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Random", seed=1).partition(circuit, 2)
        with pytest.raises(SimulationError, match="k=2"):
            ProcessTimeWarpSimulator(
                circuit, assignment, stimulus, VirtualMachine(num_nodes=3)
            )

    def test_worker_failure_surfaces_as_simulation_error(self, s27_setup):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Random", seed=1).partition(circuit, 2)
        sim = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus,
            VirtualMachine(num_nodes=2), max_events=10,
        )
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_workers_exit_cleanly_on_success(self, s27_setup):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 3)
        sim = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus,
            VirtualMachine(num_nodes=3, gvt_interval=32),
        )
        sim.run()
        # Shutdown joined every worker (nobody needed terminate()).
        assert sim.worker_exitcodes == {0: 0, 1: 0, 2: 0}


# ----------------------------------------------------------------------
# Worker-death liveness (REPRO_TW_FAULT injection hooks)
# ----------------------------------------------------------------------
class TestWorkerDeath:
    """Shutdown/liveness races, each pinned by an injected fault."""

    def _sim(self, s27_setup, n=2, **kw):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Random", seed=1).partition(circuit, n)
        kw.setdefault("timeout", 60.0)
        return ProcessTimeWarpSimulator(
            circuit, assignment, stimulus,
            VirtualMachine(num_nodes=n, gvt_interval=32), **kw,
        )

    def test_injected_exception_ships_child_traceback(
        self, s27_setup, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TW_FAULT", "1:raise")
        sim = self._sim(s27_setup)
        start = time.monotonic()
        with pytest.raises(SimulationError, match="node 1 failed") as exc:
            sim.run()
        # The parent reports the child's actual traceback, fast — not a
        # timeout and not a generic "something died".
        assert "injected fault in node 1" in str(exc.value)
        assert "Traceback" in str(exc.value)
        assert time.monotonic() - start < 30

    def test_silent_death_names_node_and_exitcode(
        self, s27_setup, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit:7")
        sim = self._sim(s27_setup, death_grace=0.5)
        start = time.monotonic()
        with pytest.raises(
            SimulationError, match=r"node 1 \(exitcode 7\)"
        ):
            sim.run()
        # Detected via exit codes + grace drain, far inside the timeout.
        assert time.monotonic() - start < 30

    def test_late_report_is_not_mistaken_for_death(
        self, s27_setup, monkeypatch
    ):
        """Regression for the ``results.empty()`` liveness check.

        Node 1 finishes the simulation, *sleeps past several parent
        polls*, then reports.  Node 0 reports and exits immediately, so
        the old check — "some worker is dead and the results queue
        looks empty" — deterministically misfired with "a node process
        died without reporting" while node 1's payload was seconds from
        arriving.  The drain-with-grace parent must complete the run.
        """
        monkeypatch.setenv("REPRO_TW_FAULT", "1:late-report:1.0")
        sim = self._sim(s27_setup)
        result = sim.run()
        assert result.backend == "process"
        assert sim.worker_exitcodes == {0: 0, 1: 0}

    def test_hung_worker_hits_the_timeout(self, s27_setup, monkeypatch):
        monkeypatch.setenv("REPRO_TW_FAULT", "0:hang")
        sim = self._sim(s27_setup, timeout=2.0)
        with pytest.raises(SimulationError, match="timed out after 2s"):
            sim.run()
        # The hung worker was terminated, not left behind.
        assert sim.worker_exitcodes[0] is not None
        assert sim.worker_exitcodes[0] != 0

    def test_shutdown_drains_wedged_queue_feeder(
        self, s27_setup, monkeypatch
    ):
        """Regression for the shutdown-path queue handling.

        Node 0 stuffs ~4k messages into its *own* inbox (which nobody
        drains) and exits without reporting: its queue feeder thread
        blocks flushing into the full pipe, so the process cannot exit
        on its own.  The old shutdown called ``cancel_join_thread()``
        and gave up after a 5s join, terminating the worker (exitcode
        -SIGTERM).  The fixed shutdown drains inboxes *while* joining,
        which unwedges the feeder and lets the worker exit cleanly —
        observable as exitcode 0.
        """
        monkeypatch.setenv("REPRO_TW_FAULT", "0:flood:0")
        sim = self._sim(s27_setup, timeout=2.0, death_grace=0.5)
        with pytest.raises(SimulationError):
            sim.run()
        assert sim.worker_exitcodes[0] == 0, (
            "flooding worker should exit cleanly once the parent "
            f"drains its queue, got {sim.worker_exitcodes}"
        )

    def test_fault_spec_parsing_ignores_other_nodes(self, monkeypatch):
        from repro.warped.parallel.backend import _worker_faults

        monkeypatch.setenv(
            "REPRO_TW_FAULT", "0:exit:3, 1:late-report:0.5 ,2:raise"
        )
        assert _worker_faults(0) == [("exit", "3")]
        assert _worker_faults(1) == [("late-report", "0.5")]
        assert _worker_faults(2) == [("raise", None)]
        assert _worker_faults(3) == []
        monkeypatch.delenv("REPRO_TW_FAULT")
        assert _worker_faults(0) == []

    def test_fault_spec_without_mode_is_config_error(self, monkeypatch):
        """Regression: ``REPRO_TW_FAULT=0`` used to IndexError."""
        from repro.warped.parallel.backend import _worker_faults

        monkeypatch.setenv("REPRO_TW_FAULT", "0")
        with pytest.raises(ConfigError, match=r"'0' has no mode"):
            _worker_faults(0)
        # A trailing colon with nothing after it is equally modeless.
        monkeypatch.setenv("REPRO_TW_FAULT", "1:")
        with pytest.raises(ConfigError, match="has no mode"):
            _worker_faults(1)

    def test_fault_spec_non_integer_node_is_config_error(self, monkeypatch):
        """Regression: ``REPRO_TW_FAULT=x:raise`` used to ValueError."""
        from repro.warped.parallel.backend import _worker_faults

        monkeypatch.setenv("REPRO_TW_FAULT", "x:raise")
        with pytest.raises(ConfigError, match=r"'x:raise' has a non-integer"):
            _worker_faults(0)

    def test_fault_spec_unknown_mode_is_config_error(self, monkeypatch):
        from repro.warped.parallel.backend import _worker_faults

        monkeypatch.setenv("REPRO_TW_FAULT", "0:explode")
        with pytest.raises(ConfigError, match="unknown mode 'explode'"):
            _worker_faults(0)

    def test_fault_spec_attempt_gating_and_persistence(self, monkeypatch):
        """Faults fire on attempt 0 only unless re-armed with ``*``."""
        from repro.warped.parallel.backend import _worker_faults

        monkeypatch.setenv("REPRO_TW_FAULT", "0:exit:3,1:exit-at*:200")
        assert _worker_faults(0, attempt=0) == [("exit", "3")]
        assert _worker_faults(0, attempt=1) == []
        assert _worker_faults(1, attempt=0) == [("exit-at", "200")]
        assert _worker_faults(1, attempt=3) == [("exit-at", "200")]

    def test_flood_fault_terminates_against_bounded_inbox(
        self, s27_setup, monkeypatch
    ):
        """Regression: the flood injector used blocking ``put`` and could
        deadlock itself against a full bounded queue.  With a tiny
        ``inbox_maxsize`` the run must still terminate (the injector
        drops instead of blocking)."""
        monkeypatch.setenv("REPRO_TW_FAULT", "0:flood:0")
        sim = self._sim(
            s27_setup, timeout=5.0, death_grace=0.5, inbox_maxsize=64
        )
        start = time.monotonic()
        with pytest.raises(SimulationError):
            sim.run()
        assert time.monotonic() - start < 20


# ----------------------------------------------------------------------
# Adaptive LP migration on real OS processes
# ----------------------------------------------------------------------
class TestProcessMigration:
    """End-to-end adaptive repartitioning over both wire transports.

    The decisions are wall-clock driven (real CPU time per node), so
    the tests pin a partition skewed enough that the hot/cold verdict
    is not in doubt, and assert on outcomes the protocol guarantees:
    nonzero reported migrations, conserved LP residency, and committed
    results identical to the sequential oracle.
    """

    def _skewed(self, circuit, k=2, frac=0.8):
        from repro.partition import PartitionAssignment

        n = circuit.num_gates
        cut = int(n * frac)
        assignment = [
            0 if i < cut else 1 + (i % (k - 1)) for i in range(n)
        ]
        return PartitionAssignment(circuit, k, assignment, algorithm="skewed")

    @pytest.mark.parametrize("transport", ("queue", "shm"))
    def test_skewed_partition_migrates(self, s27_setup, transport):
        circuit, _, _ = s27_setup
        stimulus = RandomStimulus(circuit, num_cycles=40, period=20, seed=5)
        sequential = SequentialSimulator(circuit, stimulus).run()
        machine = VirtualMachine(
            num_nodes=2, gvt_interval=16,
            migration_threshold=1.2, migration_fraction=0.25,
        )
        result = ProcessTimeWarpSimulator(
            circuit, self._skewed(circuit), stimulus, machine,
            transport=transport,
        ).run()
        assert result.migrations >= 1
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures

    def test_migration_emits_trace_records(self, s27_setup, tmp_path):
        circuit, _, _ = s27_setup
        stimulus = RandomStimulus(circuit, num_cycles=40, period=20, seed=5)
        trace = str(tmp_path / "migr.jsonl")
        machine = VirtualMachine(
            num_nodes=2, gvt_interval=16,
            migration_threshold=1.2, migration_fraction=0.25,
        )
        result = ProcessTimeWarpSimulator(
            circuit, self._skewed(circuit), stimulus, machine,
            trace_path=trace,
        ).run()
        from repro.obs import read_trace

        migrs = [r for r in read_trace(trace) if r["kind"] == "migr"]
        assert result.migrations == sum(r["lps"] for r in migrs)
        for record in migrs:
            assert record["src"] != record["dst"]
            assert record["lps"] >= 1
            assert record["pending"] >= 0
            assert record["gvt"] >= 0

    def test_engine_forwards_misrouted_when_migrating(self, s27):
        """With migration on, a stale-map delivery forwards, not faults."""
        stimulus = RandomStimulus(circuit=s27, num_cycles=4, period=20, seed=4)
        assignment = get_partitioner("Random", seed=4).partition(s27, 2)
        engine = NodeEngine(
            s27, assignment.assignment, 0, 2, stimulus,
            migration_enabled=True,
        )
        foreign = next(
            i for i, node in enumerate(assignment.assignment) if node == 1
        )
        engine.handle_remote(Message(5, 2, 0, 0, 1, foreign, 999))
        assert engine.counters["forwarded"] == 1
        assert engine.outbox and engine.outbox[-1][0] == 1

    def test_extract_adopt_round_trip(self, s27):
        """LP state survives an extract → adopt hop bit-for-bit."""
        stimulus = RandomStimulus(circuit=s27, num_cycles=4, period=20, seed=4)
        assignment = get_partitioner("Random", seed=4).partition(s27, 2)
        src = NodeEngine(
            s27, list(assignment.assignment), 0, 2, stimulus,
            migration_enabled=True,
        )
        dst = NodeEngine(
            s27, list(assignment.assignment), 1, 2, stimulus,
            migration_enabled=True,
        )
        src.schedule_initial()
        for _ in range(10):
            if src.queue.min_time is None:
                break
            src.process_one()
            src.outbox.clear()
        before_lps = len(src.lps)
        payload = src.extract_migrants(1, 0.3, version=7)
        assert payload is not None
        moved = payload["gates"]
        assert 1 <= len(moved) <= before_lps - 1
        assert len(src.lps) == before_lps - len(moved)
        gates = dst.adopt_migrants(payload, 0, version=7)
        assert gates == moved
        for g in moved:
            # Both sides now agree the gates live on node 1.
            assert src.owner(g) == 1
            assert dst.owner(g) == 1
            assert g in dst.lps
        assert src.counters["migrations_out"] == len(moved)
        assert dst.counters["migrations_in"] == len(moved)

    def test_stale_ownership_announcement_ignored(self, s27):
        stimulus = RandomStimulus(circuit=s27, num_cycles=2, period=20, seed=4)
        assignment = get_partitioner("Random", seed=4).partition(s27, 2)
        engine = NodeEngine(
            s27, list(assignment.assignment), 0, 2, stimulus,
            migration_enabled=True,
        )
        gate = 0
        engine.apply_ownership([gate], 1, version=5)
        assert engine.owner(gate) == 1
        engine.apply_ownership([gate], 0, version=3)  # stale: ignored
        assert engine.owner(gate) == 1
        engine.apply_ownership([gate], 0, version=6)
        assert engine.owner(gate) == 0
