"""Property-based tests (hypothesis) on the core invariants.

Strategies build small random sequential circuits through the public
generator, then check the system-level invariants: structural validity,
serialisation round-trips, partition completeness, coarsening algebra,
and — the big one — Time Warp/sequential equivalence.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    GeneratorSpec,
    generate_circuit,
    parse_bench,
    validate_circuit,
    write_bench,
)
from repro.partition import PARTITIONERS, edge_cut, get_partitioner
from repro.partition.multilevel import CoarseGraph, coarsen_once
from repro.partition.multilevel.refine_greedy import cut_weight, greedy_refine
from repro.sim import RandomStimulus, SequentialSimulator
from repro.conservative import ConservativeSimulator
from repro.vhdl import elaborate, parse_vhdl, write_vhdl
from repro.warped import (
    ProcessTimeWarpSimulator,
    TimeWarpSimulator,
    VirtualMachine,
)

# One shared strategy for small circuits: hypothesis drives the spec,
# the generator guarantees structural validity (checked anyway).
specs = st.builds(
    GeneratorSpec,
    name=st.just("prop"),
    num_inputs=st.integers(2, 6),
    num_outputs=st.integers(1, 5),
    num_gates=st.integers(20, 90),
    num_dffs=st.integers(0, 8),
    depth=st.integers(3, 8),
    unary_fraction=st.floats(0.0, 0.5),
    locality=st.floats(0.5, 1.0),
    seed=st.integers(0, 2**31),
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(spec=specs)
def test_generated_circuits_are_valid(spec):
    validate_circuit(generate_circuit(spec))


@relaxed
@given(spec=specs)
def test_bench_round_trip_preserves_structure(spec):
    circuit = generate_circuit(spec)
    again = parse_bench(write_bench(circuit))
    assert again.num_gates == circuit.num_gates
    assert sorted(again.edges()) == sorted(circuit.edges())


@relaxed
@given(spec=specs)
def test_vhdl_round_trip_preserves_structure(spec):
    circuit = generate_circuit(spec)
    again = elaborate(parse_vhdl(write_vhdl(circuit)))
    assert again.num_gates == circuit.num_gates
    assert again.num_edges == circuit.num_edges


@relaxed
@given(spec=specs, k=st.integers(1, 6), name=st.sampled_from(sorted(PARTITIONERS)))
def test_partitions_are_complete_and_nonempty(spec, k, name):
    circuit = generate_circuit(spec)
    if k > circuit.num_gates:
        k = circuit.num_gates
    assignment = get_partitioner(name, seed=1).partition(circuit, k)
    assignment.validate()
    assert sorted(set(assignment.assignment)) == list(range(k))


@relaxed
@given(spec=specs)
def test_coarsening_is_a_partition_of_vertices(spec):
    circuit = generate_circuit(spec)
    graph = CoarseGraph.from_circuit(circuit)
    groups, _ = coarsen_once(graph, merge_all=True)
    flat = sorted(v for group in groups for v in group)
    assert flat == list(range(graph.n))
    coarse = graph.contract(groups)
    assert sum(coarse.weight) == graph.total_weight
    # no group holds two primary inputs
    for group in groups:
        assert sum(1 for v in group if graph.contains_input[v]) <= 1


@relaxed
@given(spec=specs, k=st.integers(2, 5), seed=st.integers(0, 1000))
def test_greedy_refinement_never_worsens_cut(spec, k, seed):
    circuit = generate_circuit(spec)
    graph = CoarseGraph.from_circuit(circuit)
    rng = np.random.default_rng(seed)
    partition = [int(rng.integers(0, k)) for _ in range(graph.n)]
    before = cut_weight(graph, partition)
    greedy_refine(graph, partition, k, rng, max_weight=graph.total_weight)
    assert cut_weight(graph, partition) <= before


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=specs,
    k=st.integers(2, 5),
    name=st.sampled_from(sorted(PARTITIONERS)),
    window=st.sampled_from([None, 10, 40]),
)
def test_time_warp_equals_sequential(spec, k, name, window):
    """THE invariant: optimism never changes simulation results."""
    circuit = generate_circuit(spec)
    if k > circuit.num_gates:
        k = circuit.num_gates
    stimulus = RandomStimulus(circuit, num_cycles=12, seed=spec.seed % 997)
    sequential = SequentialSimulator(circuit, stimulus).run()
    assignment = get_partitioner(name, seed=2).partition(circuit, k)
    machine = VirtualMachine(num_nodes=k, optimism_window=window)
    parallel = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    assert parallel.final_values == sequential.final_values


@relaxed
@given(spec=specs, k=st.integers(2, 4))
def test_multilevel_beats_random_on_cut(spec, k):
    """The contribution's core promise, as a property over circuits.

    Only asserted when the circuit gives the hierarchy room to work
    (~15 gates per partition); below that the coarsest graph is the
    circuit itself and the comparison is noise.
    """
    circuit = generate_circuit(spec)
    if circuit.num_gates < 15 * k:
        return
    ml = get_partitioner("Multilevel", seed=1).partition(circuit, k)
    rnd = get_partitioner("Random", seed=1).partition(circuit, k)
    assert edge_cut(ml) <= edge_cut(rnd)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=specs, k=st.integers(2, 4))
def test_three_kernels_agree(spec, k):
    """Sequential, optimistic and conservative engines reach the same
    quiescent state on arbitrary circuits and partitions."""
    circuit = generate_circuit(spec)
    if k > circuit.num_gates:
        k = circuit.num_gates
    stimulus = RandomStimulus(circuit, num_cycles=10, seed=spec.seed % 499)
    sequential = SequentialSimulator(circuit, stimulus).run()
    assignment = get_partitioner("Cluster", seed=2).partition(circuit, k)
    optimistic = TimeWarpSimulator(
        circuit, assignment, stimulus, VirtualMachine(num_nodes=k)
    ).run()
    conservative = ConservativeSimulator(
        circuit, assignment, stimulus, VirtualMachine(num_nodes=k)
    ).run()
    assert optimistic.final_values == sequential.final_values
    assert conservative.final_values == sequential.final_values


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=specs,
    k=st.integers(2, 4),
    name=st.sampled_from(["Random", "Multilevel"]),
)
def test_process_backend_deterministic_and_sequential(spec, k, name):
    """The multiprocess backend is a pure function of its seeds.

    Committed results must not depend on OS scheduling: two runs on
    real processes agree with each other and with the sequential
    oracle, on final values and on the committed capture history.
    """
    circuit = generate_circuit(spec)
    if k > circuit.num_gates:
        k = circuit.num_gates
    stimulus = RandomStimulus(circuit, num_cycles=8, seed=spec.seed % 997)
    sequential = SequentialSimulator(circuit, stimulus).run()
    assignment = get_partitioner(name, seed=2).partition(circuit, k)
    machine = VirtualMachine(num_nodes=k, gvt_interval=64)
    first, second = (
        ProcessTimeWarpSimulator(circuit, assignment, stimulus, machine).run()
        for _ in range(2)
    )
    for run in (first, second):
        assert run.final_values == sequential.final_values
        assert run.committed_captures == sequential.committed_captures
    assert first.final_values == second.final_values
    assert first.committed_captures == second.committed_captures


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=specs,
    checkpoint=st.sampled_from([None, 1, 3, 16]),
    cancellation=st.sampled_from(["aggressive", "lazy"]),
)
def test_kernel_policies_preserve_results(spec, checkpoint, cancellation):
    """State saving and cancellation policies never change outcomes."""
    circuit = generate_circuit(spec)
    k = min(4, circuit.num_gates)
    stimulus = RandomStimulus(circuit, num_cycles=10, seed=spec.seed % 499)
    sequential = SequentialSimulator(circuit, stimulus).run()
    assignment = get_partitioner("Random", seed=2).partition(circuit, k)
    result = TimeWarpSimulator(
        circuit, assignment, stimulus,
        VirtualMachine(
            num_nodes=k,
            checkpoint_interval=checkpoint,
            cancellation=cancellation,
        ),
    ).run()
    assert result.final_values == sequential.final_values
