"""Checkpoint/restart recovery for the process backend.

Three layers, cheapest first: the epoch store and replay computation as
pure functions over files and dicts, the engine snapshot/restore
roundtrip inside one process, and the real multiprocess backend killed
mid-run and recovered end to end.  The bit-identical differential check
(crashed run == virtual == sequential) lives in
``test_differential_backends.py``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.circuit.netlists import load_s27
from repro.errors import SimulationError
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, VirtualMachine
from repro.warped.parallel import NodeEngine, recovery
from repro.warped.parallel.protocol import RESUME


# ----------------------------------------------------------------------
# Epoch store (files on disk)
# ----------------------------------------------------------------------
def _payload(node, cid, **loop):
    return {"node": node, "cid": cid, "gvt": float(cid), "engine": {},
            "loop": loop}


def _write_epoch(directory, cid, nodes):
    for node in nodes:
        recovery.write_checkpoint(
            recovery.ckpt_path(str(directory), node, cid), _payload(node, cid)
        )


class TestEpochStore:
    def test_write_load_roundtrip(self, tmp_path):
        path = recovery.ckpt_path(str(tmp_path), 1, 3)
        nbytes = recovery.write_checkpoint(path, _payload(1, 3))
        assert nbytes > 0
        loaded = recovery.load_checkpoint(path)
        assert loaded["node"] == 1
        assert loaded["cid"] == 3
        assert loaded["version"] == recovery.CKPT_VERSION

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.node0.cid1"
        path.write_bytes(pickle.dumps({"version": 99, "node": 0, "cid": 1}))
        with pytest.raises(ValueError, match="version"):
            recovery.load_checkpoint(str(path))

    def test_latest_complete_epoch_skips_partial(self, tmp_path):
        _write_epoch(tmp_path, 2, (0, 1))
        _write_epoch(tmp_path, 5, (0, 1))
        _write_epoch(tmp_path, 7, (0,))  # node 1 died before writing
        cid, payloads = recovery.latest_complete_epoch(str(tmp_path), 2)
        assert cid == 5
        assert set(payloads) == {0, 1}

    def test_latest_complete_epoch_skips_corrupt(self, tmp_path):
        _write_epoch(tmp_path, 2, (0, 1))
        _write_epoch(tmp_path, 4, (0, 1))
        (tmp_path / "ck.node1.cid4").write_bytes(b"not a pickle")
        cid, _ = recovery.latest_complete_epoch(str(tmp_path), 2)
        assert cid == 2

    def test_no_epochs_means_none(self, tmp_path):
        assert recovery.latest_complete_epoch(str(tmp_path), 2) is None
        missing = tmp_path / "does-not-exist"
        assert recovery.latest_complete_epoch(str(missing), 2) is None

    def test_drop_epochs_after_and_before(self, tmp_path):
        for cid in (0, 3, 6):
            _write_epoch(tmp_path, cid, (0, 1))
        assert recovery.drop_epochs_after(str(tmp_path), 3) == 2
        assert sorted(recovery.scan_epochs(str(tmp_path))) == [0, 3]
        assert recovery.drop_epochs_before(str(tmp_path), 3) == 2
        assert sorted(recovery.scan_epochs(str(tmp_path))) == [3]


# ----------------------------------------------------------------------
# Replay computation (pure dict -> dict)
# ----------------------------------------------------------------------
class _Clerk:
    def __init__(self, cur_cid):
        self.cur_cid = cur_cid


def _loop(send_log=None, recv_seq=None, cur_cid=0, next_cid=1):
    return {"send_log": send_log or {}, "recv_seq": recv_seq or {},
            "clerk": _Clerk(cur_cid), "next_cid": next_cid}


class TestReplayComputation:
    def test_in_flight_messages_replayed_in_order(self):
        payloads = {
            0: _payload(0, 2, **_loop(
                send_log={1: [(1, 0, "a"), (2, 0, "b"), (3, 1, "c")]}
            )),
            # Node 1's cursor says it had received seq 1 at the cut:
            # seqs 2 and 3 were in flight and must be replayed, in order.
            1: _payload(1, 2, **_loop(recv_seq={0: 1})),
        }
        replays = recovery.compute_replays(payloads)
        assert list(replays) == [1]
        assert replays[1] == [(RESUME, 0, 2, 0, "b"), (RESUME, 0, 3, 1, "c")]

    def test_received_messages_are_not_replayed(self):
        payloads = {
            0: _payload(0, 2, **_loop(send_log={1: [(1, 0, "a")]})),
            1: _payload(1, 2, **_loop(recv_seq={0: 1})),
        }
        assert recovery.compute_replays(payloads) == {}

    def test_resume_cid_base_clears_every_restored_color(self):
        payloads = {
            0: _payload(0, 2, **_loop(cur_cid=4, next_cid=3)),
            1: _payload(1, 2, **_loop(cur_cid=2, next_cid=6)),
        }
        # One clerk went red for cid 4, one initiator was about to mint
        # cid 6: the fresh ring must start above both.
        assert recovery.resume_cid_base(payloads) == 7


# ----------------------------------------------------------------------
# Engine snapshot/restore roundtrip (one process, no transport)
# ----------------------------------------------------------------------
class TestEngineSnapshot:
    def test_restored_engine_finishes_identically(self):
        circuit = load_s27()
        stimulus = RandomStimulus(circuit, num_cycles=12, period=20, seed=5)
        assignment = [0] * circuit.num_gates

        original = NodeEngine(circuit, assignment, 0, 1, stimulus)
        original.schedule_initial()
        for _ in range(60):
            original.process_one()
        # Through the same pickle pipe a checkpoint file would use.
        snap = pickle.loads(pickle.dumps(original.snapshot_state()))
        while original.min_pending() is not None:
            original.process_one()

        restored = NodeEngine(circuit, assignment, 0, 1, stimulus)
        restored.restore_state(snap)  # no schedule_initial: the snapshot rules
        assert restored.counters["events"] == 60
        while restored.min_pending() is not None:
            restored.process_one()

        original.check_quiescent()
        restored.check_quiescent()
        assert restored.final_values() == original.final_values()
        assert restored.capture_log == original.capture_log
        assert restored.counters == original.counters


# ----------------------------------------------------------------------
# The real multiprocess backend, killed and recovered
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def s27_setup():
    circuit = load_s27()
    stimulus = RandomStimulus(circuit, num_cycles=20, period=20, seed=5)
    sequential = SequentialSimulator(circuit, stimulus).run()
    return circuit, stimulus, sequential


class TestRecoveryEndToEnd:
    def _sim(self, s27_setup, n=2, ckpt=60, **kw):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Multilevel", seed=3).partition(circuit, n)
        kw.setdefault("timeout", 60.0)
        kw.setdefault("max_restarts", 2)
        return ProcessTimeWarpSimulator(
            circuit, assignment, stimulus,
            VirtualMachine(
                num_nodes=n, gvt_interval=32, checkpoint_interval=ckpt
            ),
            **kw,
        )

    def test_mid_run_crash_resumes_from_epoch(
        self, s27_setup, monkeypatch, tmp_path
    ):
        _, _, sequential = s27_setup
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
        sim = self._sim(s27_setup, checkpoint_dir=str(tmp_path))
        result = sim.run()
        assert result.restarts == 1
        assert not result.degraded
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures
        assert "restarts=1" in result.summary()
        (record,) = sim.restart_log
        assert record["kind"] == "restart"
        assert record["failed"] == [1]
        assert record["to_attempt"] == 1
        assert record["epoch"] is not None  # resumed from a real epoch
        assert record["downtime"] >= 0

    def test_startup_death_restarts_from_scratch(
        self, s27_setup, monkeypatch
    ):
        """A node killed before writing even its epoch-0 file.

        No complete epoch exists, so the parent must fall back to a
        from-scratch restart instead of failing the run.
        """
        _, _, sequential = s27_setup
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit:7")
        sim = self._sim(s27_setup, death_grace=0.5)
        result = sim.run()
        assert result.restarts == 1
        assert result.final_values == sequential.final_values
        (record,) = sim.restart_log
        assert record["epoch"] is None  # nothing on disk: scratch restart

    def test_startup_raise_recovers(self, s27_setup, monkeypatch):
        _, _, sequential = s27_setup
        monkeypatch.setenv("REPRO_TW_FAULT", "1:raise")
        result = self._sim(s27_setup).run()
        assert result.restarts == 1
        assert result.final_values == sequential.final_values

    def test_fail_stop_preserved_without_budget(self, s27_setup, monkeypatch):
        """``max_restarts=0`` keeps the original fail-stop contract —
        same exception, same message, even with checkpointing on."""
        monkeypatch.setenv("REPRO_TW_FAULT", "1:raise")
        sim = self._sim(s27_setup, max_restarts=0)
        with pytest.raises(SimulationError, match="node 1 failed") as exc:
            sim.run()
        assert "injected fault in node 1" in str(exc.value)

    def test_hang_still_hits_the_timeout(self, s27_setup, monkeypatch):
        """A wedged (not dead) worker is a liveness failure, not a
        crash: the timeout stays terminal — restarting cannot help a
        run whose failure detector never fired."""
        monkeypatch.setenv("REPRO_TW_FAULT", "0:hang")
        sim = self._sim(s27_setup, timeout=2.0)
        with pytest.raises(SimulationError, match="timed out after 2s"):
            sim.run()

    def test_budget_exhaustion_degrades_to_virtual(
        self, s27_setup, monkeypatch
    ):
        """A node that dies on *every* attempt (persistent fault)
        exhausts its budget; the run finishes on the virtual backend
        and says so instead of raising."""
        _, _, sequential = s27_setup
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit*:7")
        sim = self._sim(s27_setup, max_restarts=1, death_grace=0.5)
        result = sim.run()
        assert result.degraded
        assert result.restarts == 1
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures
        assert "DEGRADED" in result.summary()

    def test_clean_run_prunes_old_epochs(self, s27_setup, monkeypatch, tmp_path):
        _, _, sequential = s27_setup
        monkeypatch.delenv("REPRO_TW_FAULT", raising=False)
        result = self._sim(s27_setup, checkpoint_dir=str(tmp_path)).run()
        assert result.restarts == 0
        assert result.final_values == sequential.final_values
        # Epochs were written, and superseded ones were pruned as newer
        # complete epochs landed.
        epochs = recovery.scan_epochs(str(tmp_path))
        assert epochs, "no checkpoint epochs were written"
        complete = [cid for cid, files in epochs.items() if len(files) == 2]
        assert len(complete) <= 2

    def test_shm_transport_recovers_too(self, s27_setup, monkeypatch):
        """Recovery is transport-independent: the same kill-and-restore
        path works when the ring lineage is rebuilt on shm channels."""
        _, _, sequential = s27_setup
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
        result = self._sim(s27_setup, transport="shm").run()
        assert result.restarts == 1
        assert not result.degraded
        assert result.final_values == sequential.final_values

    @pytest.mark.parametrize("transport", ("queue", "shm"))
    def test_crash_with_migration_enabled_recovers(
        self, s27_setup, monkeypatch, tmp_path, transport
    ):
        """Kill a node in a run that is also migrating LPs.

        Migration epochs coincide with checkpoint epochs, ownership and
        residency live inside every snapshot, and LP-carrying blobs are
        deferred past the epoch barrier — so whether the crash lands
        before, during, or after a migration, the restore is consistent
        and the committed results still match the oracle.  The skewed
        partition makes the hot/cold verdict unambiguous so migration
        genuinely interleaves with the crash-restart cycle.
        """
        from repro.partition import PartitionAssignment

        circuit, _, _ = s27_setup
        stimulus = RandomStimulus(circuit, num_cycles=40, period=20, seed=5)
        sequential = SequentialSimulator(circuit, stimulus).run()
        n = circuit.num_gates
        cut = int(n * 0.8)
        skewed = PartitionAssignment(
            circuit, 2, [0 if i < cut else 1 for i in range(n)],
            algorithm="skewed",
        )
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
        result = ProcessTimeWarpSimulator(
            circuit, skewed, stimulus,
            VirtualMachine(
                num_nodes=2, gvt_interval=16, checkpoint_interval=60,
                migration_threshold=1.2, migration_fraction=0.25,
            ),
            max_restarts=3, timeout=60.0,
            checkpoint_dir=str(tmp_path), transport=transport,
        ).run()
        assert result.restarts >= 1
        assert not result.degraded
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures

    def test_trace_has_ckpt_and_restart_records(
        self, s27_setup, monkeypatch, tmp_path
    ):
        from repro.obs import analyze_trace
        from repro.obs.tracer import read_trace

        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
        trace = tmp_path / "run.jsonl"
        sim = self._sim(s27_setup, trace_path=str(trace))
        result = sim.run()
        assert result.restarts == 1
        records = read_trace(str(trace))
        ckpts = [r for r in records if r["kind"] == "ckpt"]
        assert ckpts
        for r in ckpts:
            assert r["cid"] >= 0 and r["bytes"] > 0 and r["secs"] >= 0
        (restart,) = [r for r in records if r["kind"] == "restart"]
        assert restart["node"] == -1  # parent-authored
        assert restart["failed"] == [1]
        assert restart["to_attempt"] == 1
        # The merge kept each node's newest attempt only: both nodes
        # restarted, so every worker record carries attempt 1.
        assert all(
            r.get("attempt", 0) == 1 for r in records if r["node"] >= 0
        )
        summary = analyze_trace(records)["recovery"]
        assert summary["restarts"] == 1
        assert summary["checkpoints"] == len(ckpts)
        assert summary["checkpoint_bytes"] > 0


# ----------------------------------------------------------------------
# Shm segment hygiene: no /dev/shm leaks on ANY exit path
# ----------------------------------------------------------------------
class _InterruptingQueue:
    """Results-queue proxy that turns the Nth parent ``get`` into a
    KeyboardInterrupt — a Ctrl-C landing mid-collection, after workers
    have started and shm rings are live."""

    def __init__(self, inner, after: int):
        self._inner = inner
        self._remaining = after

    def get(self, timeout=None):
        if self._remaining <= 0:
            raise KeyboardInterrupt
        self._remaining -= 1
        return self._inner.get(timeout)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm")
class TestShmSegmentHygiene:
    """Every exit path of a shm-transport run must unlink its rings.

    Segment names embed the creating parent's pid (``twshm-<pid>-...``),
    so "this run leaked" is exactly "an entry with our pid prefix
    survives in /dev/shm".
    """

    @staticmethod
    def _our_segments() -> set[str]:
        prefix = f"twshm-{os.getpid()}-"
        return {n for n in os.listdir("/dev/shm") if n.startswith(prefix)}

    def _sim(self, s27_setup, **kw):
        circuit, stimulus, _ = s27_setup
        assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 2)
        kw.setdefault("timeout", 60.0)
        return ProcessTimeWarpSimulator(
            circuit, assignment, stimulus,
            VirtualMachine(num_nodes=2, gvt_interval=32, checkpoint_interval=60),
            transport="shm", **kw,
        )

    def test_no_leak_after_worker_death_and_restart(
        self, s27_setup, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
        result = self._sim(s27_setup, max_restarts=2).run()
        assert result.restarts >= 1
        assert not self._our_segments(), "restarted run leaked shm segments"

    def test_no_leak_after_fail_stop_error(self, s27_setup, monkeypatch):
        monkeypatch.setenv("REPRO_TW_FAULT", "1:raise")
        with pytest.raises(SimulationError, match="node 1 failed"):
            self._sim(s27_setup, max_restarts=0).run()
        assert not self._our_segments(), "failed run leaked shm segments"

    def test_no_leak_after_keyboard_interrupt(self, s27_setup, monkeypatch):
        monkeypatch.delenv("REPRO_TW_FAULT", raising=False)
        sim = self._sim(s27_setup, max_restarts=0)
        make_results = sim._make_results_queue
        sim._make_results_queue = (
            lambda ctx: _InterruptingQueue(make_results(ctx), after=1)
        )
        with pytest.raises(KeyboardInterrupt):
            sim.run()
        assert not self._our_segments(), "interrupted run leaked shm segments"
