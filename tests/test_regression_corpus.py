"""Replay the committed fuzz-regression corpus.

Each JSON file under ``tests/corpus/`` pins one simulation
configuration that either exposed a kernel bug in the past (written by
``tools/fuzz_kernels.py --corpus``) or was hand-picked to exercise a
risky policy mix.  Replaying them through the same
``repro.harness.regression.run_case`` path the fuzzer uses guarantees
old findings stay fixed and the serialised format itself keeps
loading.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.regression import load_case, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 8, "regression corpus went missing"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    case = load_case(path)
    assert set(case) >= {"spec", "stimulus", "partitioner", "k", "engines"}
    assert run_case(case) == [], case["description"]
