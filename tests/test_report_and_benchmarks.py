"""Tests for the report generator and the extended benchmark family."""

import pytest

from repro.circuit import circuit_stats, load_benchmark, validate_circuit
from repro.circuit.iscas89 import (
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    all_benchmarks,
)
from repro.circuit.netlists import S27_BENCH, load_s27
from repro.errors import ConfigError
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import generate_report, headline_claims


class TestExtendedBenchmarks:
    def test_families_disjoint(self):
        assert not set(BENCHMARKS) & set(EXTENDED_BENCHMARKS)
        assert len(all_benchmarks()) == len(BENCHMARKS) + len(
            EXTENDED_BENCHMARKS
        )

    @pytest.mark.parametrize(
        "name", ["s298", "s420", "s641", "s1423", "s1494"]
    )
    def test_small_family_members_generate_exactly(self, name):
        spec = EXTENDED_BENCHMARKS[name]
        circuit = load_benchmark(name)
        validate_circuit(circuit)
        stats = circuit_stats(circuit)
        assert stats.num_inputs == spec.num_inputs
        assert stats.num_gates == spec.num_gates
        assert stats.num_outputs == spec.num_outputs
        assert stats.num_dffs == spec.num_dffs

    def test_large_members_scale(self):
        circuit = load_benchmark("s38417", scale=0.02)
        validate_circuit(circuit)
        # Table-1 convention: logic elements, excluding primary inputs.
        assert circuit_stats(circuit).num_gates == round(23815 * 0.02)

    def test_unknown_name_lists_s27(self):
        with pytest.raises(ConfigError, match="s27"):
            load_benchmark("s99999")


class TestRealS27:
    def test_loads_real_netlist(self):
        circuit = load_benchmark("s27")
        stats = circuit_stats(circuit)
        assert stats.table1_row() == ("s27", 4, 13, 1)
        assert stats.num_dffs == 3

    def test_scale_rejected_for_real_netlist(self):
        with pytest.raises(ConfigError, match="real netlist"):
            load_benchmark("s27", scale=0.5)

    def test_embedded_source_parses_to_same_graph(self):
        from repro.circuit import parse_bench

        a = load_s27()
        b = parse_bench(S27_BENCH, name="s27")
        assert sorted(a.edges()) == sorted(b.edges())

    def test_simulates_and_partitions(self):
        from repro.partition import get_partitioner
        from repro.sim import RandomStimulus, SequentialSimulator
        from repro.warped import TimeWarpSimulator, VirtualMachine

        circuit = load_s27()
        stim = RandomStimulus(circuit, num_cycles=20, seed=3)
        seq = SequentialSimulator(circuit, stim).run()
        a = get_partitioner("Multilevel", seed=1).partition(circuit, 3)
        tw = TimeWarpSimulator(
            circuit, a, stim, VirtualMachine(num_nodes=3)
        ).run()
        assert tw.final_values == seq.final_values


class TestReport:
    @pytest.fixture(scope="class")
    def tiny_runner(self):
        return ExperimentRunner(ExperimentConfig(scale=0.03, num_cycles=12))

    def test_headline_claims_structure(self, tiny_runner):
        claims = headline_claims(tiny_runner)
        assert len(claims) == 5
        for claim, holds, evidence in claims:
            assert isinstance(claim, str) and claim
            assert isinstance(holds, bool)
            assert isinstance(evidence, str) and evidence

    def test_single_node_claim_always_holds(self, tiny_runner):
        claims = dict(
            (claim, holds) for claim, holds, _ in headline_claims(tiny_runner)
        )
        assert claims["No rollbacks and no messages on a single node"]

    def test_report_contains_all_sections(self, tiny_runner):
        report = generate_report(tiny_runner)
        for section in (
            "# Reproduction report",
            "Headline claims",
            "## Table 1",
            "## Table 2",
            "## Figure 4",
            "## Figure 5",
            "## Figure 6",
        ):
            assert section in report
        assert "PASS" in report  # at least something holds even when tiny
