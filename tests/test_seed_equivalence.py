"""Differential equivalence: the optimized kernel vs the frozen seed.

The hot-path overhaul (ISSUE 3) rewrote the virtual Time Warp
executive's inner loop — queue representation, scheduling, inlined
event processing, fossil collection. ``tests/reference`` holds the
pre-optimization implementation verbatim; this suite replays the fuzz
corpus through BOTH kernels under every cancellation x state-saving
policy combination and requires bit-identical results.

``peak_history`` is the one documented exception: the seed sampled it
only at GVT rounds, undercounting the true between-round high-water
mark (an ISSUE 3 satellite bugfix) — the optimized kernel tracks it
incrementally, so its value may only be larger.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.circuit import GeneratorSpec, generate_circuit
from repro.harness.regression import load_case
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus
from repro.warped import TimeWarpSimulator, VirtualMachine
from tests.reference.seed_kernel import TimeWarpSimulator as SeedSimulator

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))

#: cancellation x state saving: incremental (None) and periodic
#: checkpointing with a small interval so coast-forward actually runs.
POLICIES = [
    pytest.param("aggressive", None, id="aggressive-incremental"),
    pytest.param("aggressive", 4, id="aggressive-checkpoint"),
    pytest.param("lazy", None, id="lazy-incremental"),
    pytest.param("lazy", 4, id="lazy-checkpoint"),
]

#: Every TimeWarpResult field that must match exactly. peak_history is
#: deliberately absent (see module docstring); final_values,
#: committed_captures and node_stats are compared separately.
COMPARED_FIELDS = (
    "events_processed",
    "events_rolled_back",
    "rollbacks",
    "app_messages",
    "anti_messages",
    "local_messages",
    "gvt_rounds",
    "lazy_reuses",
    "migrations",
    "execution_time",
)

#: World construction (generate + partition) is deterministic and far
#: slower than the runs themselves; share it across the policy matrix.
_WORLDS: dict[str, tuple] = {}


def _world(path: Path) -> tuple:
    world = _WORLDS.get(path.stem)
    if world is None:
        case = load_case(path)
        circuit = generate_circuit(GeneratorSpec(**case["spec"]))
        stimulus = RandomStimulus(circuit, **case["stimulus"])
        assignment = get_partitioner(
            case["partitioner"], seed=case.get("partitioner_seed", 0)
        ).partition(circuit, case["k"])
        world = (case, circuit, stimulus, assignment)
        _WORLDS[path.stem] = world
    return world


@pytest.mark.parametrize(("cancellation", "checkpoint"), POLICIES)
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_optimized_kernel_matches_seed(path, cancellation, checkpoint):
    case, circuit, stimulus, assignment = _world(path)
    machine_kwargs = dict(case.get("machine", {}))
    machine_kwargs["cancellation"] = cancellation
    machine_kwargs["checkpoint_interval"] = checkpoint

    def run(simulator_cls):
        machine = VirtualMachine(num_nodes=case["k"], **machine_kwargs)
        return simulator_cls(circuit, assignment, stimulus, machine).run()

    seed = run(SeedSimulator)
    new = run(TimeWarpSimulator)

    for name in COMPARED_FIELDS:
        assert getattr(new, name) == getattr(seed, name), (
            f"{name}: seed={getattr(seed, name)} new={getattr(new, name)}"
        )
    assert new.final_values == seed.final_values
    assert new.committed_captures == seed.committed_captures
    assert len(new.node_stats) == len(seed.node_stats)
    for seed_stat, new_stat in zip(seed.node_stats, new.node_stats):
        assert dataclasses.asdict(new_stat) == dataclasses.asdict(seed_stat)
    # The seed's GVT-round sampling can only ever UNDER-count the peak.
    assert new.peak_history >= seed.peak_history
