"""Unit tests for the sequential event-driven simulator."""

import pytest

from repro.circuit import GateType, parse_bench
from repro.circuit.gate import FALSE, TRUE, UNKNOWN
from repro.errors import SimulationError
from repro.sim import (
    RandomStimulus,
    SequentialCostModel,
    SequentialSimulator,
    Trace,
    VectorStimulus,
)


def inverter_chain(n=3):
    lines = ["INPUT(a)"]
    prev = "a"
    for i in range(n):
        lines.append(f"g{i} = NOT({prev})")
        prev = f"g{i}"
    lines.append(f"OUTPUT({prev})")
    return parse_bench("\n".join(lines), name="chain")


class TestCombinational:
    def test_inverter_chain_final_value(self):
        c = inverter_chain(3)
        stim = VectorStimulus(c, [{"a": 1}])
        result = SequentialSimulator(c, stim).run()
        # odd number of inversions
        assert result.value_of(c, "g2") == FALSE
        assert result.value_of(c, "g1") == TRUE

    def test_all_gate_types_settle(self):
        src = (
            "INPUT(a)\nINPUT(b)\n"
            "g0 = AND(a, b)\ng1 = NAND(a, b)\ng2 = OR(a, b)\n"
            "g3 = NOR(a, b)\ng4 = XOR(a, b)\ng5 = XNOR(a, b)\n"
            "g6 = NOT(a)\ng7 = BUFF(b)\n"
            + "".join(f"OUTPUT(g{i})\n" for i in range(8))
        )
        c = parse_bench(src)
        stim = VectorStimulus(c, [{"a": 1, "b": 0}])
        r = SequentialSimulator(c, stim).run()
        expected = {"g0": 0, "g1": 1, "g2": 1, "g3": 0, "g4": 1,
                    "g5": 0, "g6": 0, "g7": 0}
        for name, want in expected.items():
            assert r.value_of(c, name) == want, name

    def test_quiescence_values_equal_truth_table(self, combinational_circuit):
        """After settling, every gate equals its function of its inputs."""
        from repro.circuit.gate import evaluate_gate

        c = combinational_circuit
        stim = RandomStimulus(c, num_cycles=5, seed=9)
        r = SequentialSimulator(c, stim).run()
        for gate in c.gates:
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                continue
            want = evaluate_gate(
                gate.gate_type, [r.final_values[d] for d in gate.fanin]
            )
            assert r.final_values[gate.index] == want, gate.name


class TestSequentialElements:
    def test_dff_resets_to_zero(self, s27):
        stim = VectorStimulus(s27, [{"G0": 0, "G1": 0, "G2": 0, "G3": 0}])
        r = SequentialSimulator(s27, stim).run()
        # cycle 0: capture happens before reset propagates, so flops
        # hold their reset value
        for ff in s27.dffs:
            assert r.final_values[ff] in (FALSE, TRUE)

    def test_dff_captures_on_cycle_boundary(self):
        c = parse_bench(
            "INPUT(a)\nff = DFF(a)\nq = BUF(ff)\nOUTPUT(q)\n"
        )
        # a=1 during cycle 1; the capture at cycle 2 latches it
        stim = VectorStimulus(c, [{"a": 0}, {"a": 1}, {"a": 1}])
        r = SequentialSimulator(c, stim).run()
        assert r.value_of(c, "ff") == TRUE
        assert r.value_of(c, "q") == TRUE

    def test_toggle_flop(self):
        # classic divide-by-two: FF feeding an inverter feeding itself
        c = parse_bench(
            "INPUT(en)\nff = DFF(nq)\nnq = NOT(ff)\nq = BUF(ff)\nOUTPUT(q)\n"
        )
        values = []
        for cycles in (2, 3, 4, 5):
            stim = VectorStimulus(c, [{"en": 0}] * cycles)
            r = SequentialSimulator(c, stim).run()
            values.append(r.value_of(c, "ff"))
        # output toggles each extra cycle
        assert values == [values[0], 1 - values[0], values[0], 1 - values[0]]

    def test_unknowns_cleared_after_reset(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=8, seed=3)
        r = SequentialSimulator(medium_circuit, stim).run()
        unknown = sum(1 for v in r.final_values if v == UNKNOWN)
        assert unknown == 0


class TestStimulus:
    def test_random_stimulus_deterministic(self, s27):
        a = RandomStimulus(s27, num_cycles=10, seed=4)
        b = RandomStimulus(s27, num_cycles=10, seed=4)
        for pi in s27.primary_inputs:
            for cycle in range(10):
                assert a.value(pi, cycle) == b.value(pi, cycle)

    def test_activity_bounds_toggle_rate(self, s27):
        stim = RandomStimulus(s27, num_cycles=200, seed=4, activity=0.1)
        toggles = 0
        for pi in s27.primary_inputs:
            for cycle in range(1, 200):
                toggles += stim.value(pi, cycle) != stim.value(pi, cycle - 1)
        rate = toggles / (len(s27.primary_inputs) * 199)
        assert 0.03 < rate < 0.2

    def test_vector_stimulus_holds_previous(self, s27):
        stim = VectorStimulus(s27, [{"G0": 1}, {}, {"G0": 0}])
        g0 = s27.index_of("G0")
        assert [stim.value(g0, c) for c in range(3)] == [1, 1, 0]

    def test_vector_stimulus_rejects_bad_value(self, s27):
        with pytest.raises(SimulationError, match="drives"):
            VectorStimulus(s27, [{"G0": 3}])

    def test_stimulus_out_of_range_cycle(self, s27):
        stim = RandomStimulus(s27, num_cycles=2, seed=1)
        with pytest.raises(SimulationError, match="no stimulus"):
            stim.value(s27.primary_inputs[0], 5)

    def test_config_validation(self, s27):
        with pytest.raises(SimulationError):
            RandomStimulus(s27, num_cycles=0)
        with pytest.raises(SimulationError):
            RandomStimulus(s27, num_cycles=5, period=1)
        with pytest.raises(SimulationError):
            RandomStimulus(s27, num_cycles=5, activity=0.0)


class TestCostAndGuards:
    def test_execution_time_proportional_to_events(self, s27):
        stim = RandomStimulus(s27, num_cycles=10, seed=1)
        model = SequentialCostModel(event_cost=1e-3)
        r = SequentialSimulator(s27, stim, cost_model=model).run()
        assert r.execution_time == pytest.approx(r.events_processed * 1e-3)

    def test_max_events_guard(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=1)
        sim = SequentialSimulator(medium_circuit, stim, max_events=10)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_mismatched_stimulus_rejected(self, s27, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=5, seed=1)
        with pytest.raises(SimulationError, match="different circuit"):
            SequentialSimulator(s27, stim)

    def test_trace_records_changes(self, s27):
        g17 = s27.index_of("G17")
        trace = Trace(s27, watch=[g17])
        stim = RandomStimulus(s27, num_cycles=15, seed=2)
        r = SequentialSimulator(s27, stim, trace=trace).run()
        changes = trace.changes(g17)
        assert changes, "output should change at least once in 15 cycles"
        assert changes == sorted(changes, key=lambda tv: tv[0])
        assert changes[-1][1] == r.final_values[g17]


class TestEventQueue:
    """The strict ``remove`` contract (mirrors NodeQueue.annihilate)."""

    @staticmethod
    def _event(time, src=0):
        from repro.sim.event import SIG, Event

        return Event(time, SIG, src, 0, 1)

    def test_remove_unknown_key_raises(self):
        from repro.sim.event_queue import EventQueue

        q = EventQueue()
        q.push(self._event(5))
        with pytest.raises(KeyError):
            q.remove(self._event(7).key)  # never pushed
        assert len(q) == 1  # live count untouched by the failed remove

    def test_remove_twice_raises(self):
        from repro.sim.event_queue import EventQueue

        q = EventQueue()
        event = self._event(5)
        q.push(event)
        q.remove(event.key)
        assert len(q) == 0 and not q
        # Regression: double-remove used to silently drive the live
        # count negative, making __len__ and __bool__ disagree.
        with pytest.raises(KeyError):
            q.remove(event.key)
        assert len(q) == 0

    def test_remove_popped_key_raises(self):
        from repro.sim.event_queue import EventQueue

        q = EventQueue()
        event = self._event(5)
        q.push(event)
        assert q.pop() is event
        with pytest.raises(KeyError):
            q.remove(event.key)

    def test_push_revives_removed_key(self):
        from repro.sim.event_queue import EventQueue

        q = EventQueue()
        q.push(self._event(5))
        q.remove(self._event(5).key)
        revived = self._event(5)
        q.push(revived)  # fresh emission with the annihilated key
        assert len(q) == 1
        assert q.pop() is revived
        with pytest.raises(IndexError):
            q.pop()
