"""The job server: caches, warm pool, job lifecycle, HTTP surface.

The acceptance property threaded through these tests: a result served
out of the cache is **bit-identical** to the cold run that populated
it — every counter of the :class:`TimeWarpResult`, not just the final
values.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuit.netlists import S27_BENCH
from repro.errors import ConfigError
from repro.obs import Metrics
from repro.serve.app import ServeApp
from repro.serve.cache import LruCache
from repro.serve.jobs import JobManager, JobRequest, JobState
from repro.serve.pool import RingPool

S27_JOB = {
    "circuit": "s27",
    "nodes": 2,
    "num_cycles": 12,
    "gvt_interval": 128,
    "optimism_window": 100,
}


# ----------------------------------------------------------------------
# LruCache
# ----------------------------------------------------------------------
def test_lru_cache_hit_miss_and_eviction_metrics():
    metrics = Metrics(enabled=True)
    cache = LruCache(2, metrics=metrics, name="unit")
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b" (least recently used)
    assert cache.get("b") is None
    assert cache.get("c") == 3
    assert len(cache) == 2
    stats = cache.stats()
    assert stats == {
        "size": 2, "capacity": 2, "hits": 2, "misses": 2, "evictions": 1,
    }
    counters = metrics.snapshot()["counters"]
    assert counters["unit_hits"] == 2
    assert counters["unit_misses"] == 2
    assert counters["unit_evictions"] == 1


def test_lru_cache_rejects_nonpositive_capacity():
    with pytest.raises(ConfigError):
        LruCache(0)


# ----------------------------------------------------------------------
# RingPool
# ----------------------------------------------------------------------
def test_pool_reuses_rings_and_respects_bound():
    pool = RingPool(max_idle=1)
    try:
        with pool.lease(2) as first:
            first_pids = dict(first.worker_pids)
        with pool.lease(2) as again:
            assert dict(again.worker_pids) == first_pids  # warm reuse
        assert pool.reused == 1 and pool.spawned == 1
        # Two concurrent leases of different sizes; the shelf holds 1.
        with pool.lease(2), pool.lease(1):
            pass
        assert pool.idle_count() == 1
        assert pool.retired >= 1
    finally:
        pool.close()
    assert pool.idle_count() == 0


def test_pool_discards_poisoned_rings():
    pool = RingPool(max_idle=2)
    try:
        with pool.lease(2) as ring:
            pids = dict(ring.worker_pids)
            ring.kill()
        assert pool.idle_count() == 0 and pool.retired == 1
        with pool.lease(2) as replacement:
            assert dict(replacement.worker_pids) != pids
        assert pool.spawned == 2
    finally:
        pool.close()


# ----------------------------------------------------------------------
# JobRequest validation
# ----------------------------------------------------------------------
def test_job_request_validation():
    with pytest.raises(ConfigError, match="exactly one netlist"):
        JobRequest()
    with pytest.raises(ConfigError, match="exactly one netlist"):
        JobRequest(circuit="s27", bench="INPUT(A)")
    with pytest.raises(ConfigError, match="unknown job field"):
        JobRequest.from_dict({"circuit": "s27", "bogus": 1})
    with pytest.raises(ConfigError, match="timeout"):
        JobRequest(circuit="s27", timeout=10**9)
    request = JobRequest.from_dict(S27_JOB)
    assert request.machine().num_nodes == 2
    assert "<" in JobRequest(bench=S27_BENCH).describe()["bench"]


# ----------------------------------------------------------------------
# JobManager
# ----------------------------------------------------------------------
@pytest.fixture()
def manager(tmp_path):
    manager = JobManager(
        max_concurrency=2, status_dir=str(tmp_path / "status")
    )
    yield manager
    manager.close()


def test_result_cache_hit_is_bit_identical(manager):
    request = JobRequest.from_dict(S27_JOB)
    cold = manager.wait(manager.submit(request).id, timeout=60)
    assert cold.state is JobState.DONE, cold.error
    assert cold.cache == {"result": "miss", "partition": "miss"}
    warm = manager.wait(manager.submit(request).id, timeout=60)
    assert warm.state is JobState.DONE, warm.error
    assert warm.cache == {"result": "hit"}
    # Bit-identical across every field of the result record.
    assert dataclasses.asdict(warm.result) == dataclasses.asdict(cold.result)
    assert manager.result_cache.stats()["hits"] == 1


def test_inline_bench_shares_cache_with_named_benchmark(manager):
    """s27-by-name and s27-by-source canonicalise to the same key."""
    named = manager.wait(
        manager.submit(JobRequest.from_dict(S27_JOB)).id, timeout=60
    )
    assert named.state is JobState.DONE, named.error
    inline_payload = dict(S27_JOB)
    del inline_payload["circuit"]
    inline_payload["bench"] = S27_BENCH
    inline = manager.wait(
        manager.submit(JobRequest.from_dict(inline_payload)).id, timeout=60
    )
    assert inline.state is JobState.DONE, inline.error
    assert inline.cache == {"result": "hit"}
    assert dataclasses.asdict(inline.result) == dataclasses.asdict(named.result)


def test_partition_cache_hit_on_stimulus_change(manager):
    first = manager.wait(manager.submit(JobRequest.from_dict(S27_JOB)).id, 60)
    assert first.state is JobState.DONE, first.error
    changed = dict(S27_JOB, stimulus_seed=99)
    second = manager.wait(
        manager.submit(JobRequest.from_dict(changed)).id, timeout=60
    )
    assert second.state is JobState.DONE, second.error
    # Different stimulus -> result miss, but the partition is reusable.
    assert second.cache == {"result": "miss", "partition": "hit"}


def test_job_failure_is_reported_not_fatal(manager):
    bad = manager.wait(
        manager.submit(
            JobRequest.from_dict(dict(S27_JOB, algorithm="NoSuchAlgo"))
        ).id,
        timeout=60,
    )
    assert bad.state is JobState.FAILED
    assert "NoSuchAlgo" in bad.error
    # The manager survives and still serves jobs.
    ok = manager.wait(manager.submit(JobRequest.from_dict(S27_JOB)).id, 60)
    assert ok.state is JobState.DONE, ok.error


def test_cancel_queued_job():
    manager = JobManager(max_concurrency=1)
    try:
        slow = manager.submit(
            JobRequest.from_dict(dict(S27_JOB, num_cycles=40))
        )
        queued = manager.submit(JobRequest.from_dict(S27_JOB))
        assert manager.cancel(queued.id)
        done = manager.wait(queued.id, timeout=30)
        assert done.state is JobState.CANCELLED
        finished = manager.wait(slow.id, timeout=60)
        assert finished.state is JobState.DONE, finished.error
        assert not manager.cancel(queued.id)  # already terminal
    finally:
        manager.close()


def test_live_status_snapshots_carry_run_id(manager):
    job = manager.submit(JobRequest.from_dict(dict(S27_JOB, num_cycles=60)))
    deadline = time.monotonic() + 60
    saw_snapshot = False
    while time.monotonic() < deadline:
        snapshots = manager.status_snapshots(job.id)
        if snapshots:
            saw_snapshot = True
            assert all(s["run"] == job.id for s in snapshots.values())
        if manager.get(job.id).state.terminal:
            break
        time.sleep(0.01)
    assert manager.wait(job.id, timeout=1).state is JobState.DONE
    # The final (done) snapshots are stamped too.
    assert saw_snapshot or manager.status_snapshots(job.id)


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class _Server:
    """ServeApp on an ephemeral port, driven from a background loop."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager
        self.loop = asyncio.new_event_loop()
        self.app = ServeApp(manager, host="127.0.0.1", port=0)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while self.app._server is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self.app._server is not None, "server failed to start"
        self.base = f"http://127.0.0.1:{self.app.port}"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.app.start())
        self.loop.run_forever()

    def request(self, method: str, path: str, payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.app.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


@pytest.fixture()
def server(tmp_path):
    manager = JobManager(
        max_concurrency=2, status_dir=str(tmp_path / "status")
    )
    server = _Server(manager)
    yield server
    server.close()
    manager.close()


def test_http_submit_wait_and_cache_hit(server):
    status, health = server.request("GET", "/healthz")
    assert (status, health) == (200, {"ok": True})
    status, job = server.request("POST", "/jobs", S27_JOB)
    assert status == 202 and job["state"] in ("queued", "running")
    status, done = server.request("GET", f"/jobs/{job['id']}?wait=60")
    assert done["state"] == "done", done["error"]
    assert done["result"]["final_values"]
    status, again = server.request("POST", "/jobs", S27_JOB)
    status, hit = server.request("GET", f"/jobs/{again['id']}?wait=60")
    assert hit["state"] == "done" and hit["cache"] == {"result": "hit"}
    assert hit["result"] == done["result"]
    status, metrics = server.request("GET", "/metrics")
    assert metrics["result_cache"]["hits"] >= 1
    assert metrics["pool"]["spawned"] >= 1
    status, listing = server.request("GET", "/jobs")
    assert {j["id"] for j in listing["jobs"]} >= {job["id"], again["id"]}
    assert all("result" not in j for j in listing["jobs"])


def test_http_rejects_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        server.request("POST", "/jobs", {"circuit": "s27", "bogus": True})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        server.request("GET", "/jobs/job-999999")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        server.request("GET", "/nope")
    assert excinfo.value.code == 404


def test_http_event_stream_ends_with_terminal_state(server):
    _, job = server.request(
        "POST", "/jobs", dict(S27_JOB, num_cycles=40, stimulus_seed=5)
    )
    req = urllib.request.Request(server.base + f"/jobs/{job['id']}/events")
    events = []
    with urllib.request.urlopen(req, timeout=60) as resp:
        buffer = b""
        while True:
            chunk = resp.read(1)
            if not chunk:
                break
            buffer += chunk
            if buffer.endswith(b"\n\n"):
                events.append(buffer.decode())
                buffer = b""
    assert events, "no SSE frames received"
    assert events[-1].startswith("event: state")
    final = json.loads(events[-1].split("data: ", 1)[1])
    assert final["state"] == "done"


def test_http_cancel(server):
    _, job = server.request(
        "POST", "/jobs",
        {"circuit": "s9234", "scale": 0.12, "nodes": 2, "num_cycles": 60},
    )
    status, cancelled = server.request("DELETE", f"/jobs/{job['id']}")
    assert status == 200 and cancelled["cancelled"] is True
    _, detail = server.request("GET", f"/jobs/{job['id']}?wait=60")
    assert detail["state"] == "cancelled"
