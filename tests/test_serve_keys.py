"""Cache-key stability: the digests behind the job server's caches.

The result cache is sound only if the key is invariant to every
*representational* difference (gate insertion order, BENCH line order,
round-tripping) and sensitive to every *semantic* one (gate types,
delays, outputs, fanin order, machine knobs, seeds).  These tests pin
both directions.
"""

from __future__ import annotations

from repro.circuit.bench_parser import parse_bench, write_bench
from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.netlists import S27_BENCH, load_s27
from repro.serve.keys import (
    circuit_fingerprint,
    machine_fingerprint,
    partition_key,
    result_key,
    stimulus_fingerprint,
)
from repro.warped.machine import VirtualMachine


def _pair_circuit(order: str, *, delay: int = 1, out: str = "C") -> CircuitGraph:
    """Tiny circuit built with controllable gate insertion order."""
    circuit = CircuitGraph("pair")
    if order == "forward":
        circuit.add_gate("A", GateType.INPUT)
        circuit.add_gate("B", GateType.INPUT)
        circuit.add_gate("C", GateType.NAND, delay=delay)
        circuit.add_gate("D", GateType.DFF)
    else:
        circuit.add_gate("D", GateType.DFF)
        circuit.add_gate("C", GateType.NAND, delay=delay)
        circuit.add_gate("B", GateType.INPUT)
        circuit.add_gate("A", GateType.INPUT)
    c, d = circuit.index_of("C"), circuit.index_of("D")
    circuit.connect(circuit.index_of("A"), c)
    circuit.connect(circuit.index_of("B"), c)
    circuit.connect(c, d)
    circuit.mark_output(circuit.index_of(out))
    return circuit.freeze()


def test_same_netlist_parsed_twice_hashes_identically():
    assert circuit_fingerprint(parse_bench(S27_BENCH)) == circuit_fingerprint(
        parse_bench(S27_BENCH)
    )


def test_fingerprint_invariant_to_gate_insertion_order():
    assert circuit_fingerprint(_pair_circuit("forward")) == circuit_fingerprint(
        _pair_circuit("reversed")
    )


def test_fingerprint_invariant_to_bench_line_order():
    lines = [
        line for line in S27_BENCH.splitlines() if line.split("#")[0].strip()
    ]
    shuffled = "\n".join(
        sorted(lines, key=lambda line: line[::-1], reverse=True)
    )
    assert circuit_fingerprint(parse_bench(shuffled)) == circuit_fingerprint(
        load_s27()
    )


def test_fingerprint_survives_bench_round_trip():
    circuit = load_s27()
    round_tripped = parse_bench(write_bench(circuit))
    assert circuit_fingerprint(round_tripped) == circuit_fingerprint(circuit)


def test_fingerprint_sensitive_to_semantics():
    base = circuit_fingerprint(_pair_circuit("forward"))
    assert circuit_fingerprint(_pair_circuit("forward", delay=3)) != base
    assert circuit_fingerprint(_pair_circuit("forward", out="D")) != base


def test_fingerprint_sensitive_to_fanin_order():
    def build(swapped: bool) -> CircuitGraph:
        circuit = CircuitGraph("fanin")
        circuit.add_gate("A", GateType.INPUT)
        circuit.add_gate("B", GateType.INPUT)
        circuit.add_gate("C", GateType.AND)
        c = circuit.index_of("C")
        first, second = ("B", "A") if swapped else ("A", "B")
        circuit.connect(circuit.index_of(first), c)
        circuit.connect(circuit.index_of(second), c)
        circuit.mark_output(c)
        return circuit.freeze()

    # AND is symmetric, but the digest must not assume gate symmetry:
    # fanin position is semantic in general.
    assert circuit_fingerprint(build(False)) != circuit_fingerprint(build(True))


def test_machine_fingerprint_round_trips_config():
    a = VirtualMachine(num_nodes=4, gvt_interval=256, optimism_window=50)
    b = VirtualMachine(num_nodes=4, gvt_interval=256, optimism_window=50)
    assert machine_fingerprint(a) == machine_fingerprint(b)
    for other in (
        VirtualMachine(num_nodes=2, gvt_interval=256, optimism_window=50),
        VirtualMachine(num_nodes=4, gvt_interval=128, optimism_window=50),
        VirtualMachine(num_nodes=4, gvt_interval=256, optimism_window=None),
        VirtualMachine(
            num_nodes=4, gvt_interval=256, optimism_window=50,
            migration_threshold=1.5,
        ),
    ):
        assert machine_fingerprint(other) != machine_fingerprint(a)


def test_result_key_sensitive_to_every_axis():
    digest = circuit_fingerprint(load_s27())
    machine = machine_fingerprint(VirtualMachine(num_nodes=2))
    stimulus = stimulus_fingerprint(40, 100, 0.5, 7)
    base = result_key(digest, "Multilevel", 3, 2, machine, stimulus, 10**6)
    variants = [
        result_key("0" * 64, "Multilevel", 3, 2, machine, stimulus, 10**6),
        result_key(digest, "Random", 3, 2, machine, stimulus, 10**6),
        result_key(digest, "Multilevel", 4, 2, machine, stimulus, 10**6),
        result_key(digest, "Multilevel", 3, 4, machine, stimulus, 10**6),
        result_key(
            digest, "Multilevel", 3, 2,
            machine_fingerprint(VirtualMachine(num_nodes=2, gvt_interval=64)),
            stimulus, 10**6,
        ),
        result_key(
            digest, "Multilevel", 3, 2, machine,
            stimulus_fingerprint(41, 100, 0.5, 7), 10**6,
        ),
        result_key(
            digest, "Multilevel", 3, 2, machine,
            stimulus_fingerprint(40, 100, 0.5, 8), 10**6,
        ),
        result_key(digest, "Multilevel", 3, 2, machine, stimulus, 10**6 + 1),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_partition_key_stability():
    digest = circuit_fingerprint(load_s27())
    assert partition_key(digest, "Multilevel", 3, 2) == partition_key(
        digest, "Multilevel", 3, 2
    )
    assert partition_key(digest, "Multilevel", 3, 2) != partition_key(
        digest, "Multilevel", 3, 4
    )
    assert partition_key(digest, "Multilevel", 3, 2) != partition_key(
        digest, "Multilevel", 5, 2
    )
