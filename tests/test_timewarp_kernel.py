"""Time Warp kernel tests: protocol behaviour and machine model."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.partition import PartitionAssignment, get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import (
    FastEthernet,
    TimeWarpCostModel,
    TimeWarpSimulator,
    UniformNetwork,
    VirtualMachine,
)


def run_tw(circuit, k, stim, *, name="Random", seed=3, **machine_kwargs):
    assignment = get_partitioner(name, seed=seed).partition(circuit, k)
    machine = VirtualMachine(num_nodes=k, **machine_kwargs)
    return TimeWarpSimulator(circuit, assignment, stim, machine).run()


class TestSingleNode:
    def test_no_rollbacks_no_messages(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=10, seed=1)
        result = run_tw(small_circuit, 1, stim)
        assert result.rollbacks == 0
        assert result.app_messages == 0
        assert result.anti_messages == 0
        assert result.events_rolled_back == 0

    def test_matches_sequential(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=10, seed=1)
        seq = SequentialSimulator(small_circuit, stim).run()
        tw = run_tw(small_circuit, 1, stim)
        assert tw.final_values == seq.final_values


class TestParallelBehaviour:
    def test_rollbacks_happen_under_optimism(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        result = run_tw(medium_circuit, 4, stim)
        assert result.rollbacks > 0, "optimistic run should roll back sometimes"
        assert result.app_messages > 0

    def test_execution_time_decreases_with_nodes(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        t1 = run_tw(medium_circuit, 1, stim).execution_time
        t4 = run_tw(medium_circuit, 4, stim, name="Multilevel").execution_time
        assert t4 < t1

    def test_node_stats_consistent_with_totals(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=2)
        r = run_tw(medium_circuit, 4, stim)
        assert sum(s.events_processed for s in r.node_stats) == r.events_processed
        assert sum(s.rollbacks for s in r.node_stats) == r.rollbacks
        assert sum(s.events_rolled_back for s in r.node_stats) == (
            r.events_rolled_back
        )
        assert sum(s.messages_sent_remote for s in r.node_stats) == r.app_messages
        assert sum(s.num_lps for s in r.node_stats) == medium_circuit.num_gates
        assert max(s.wall_time for s in r.node_stats) == r.execution_time

    def test_efficiency_bounds(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=2)
        r = run_tw(medium_circuit, 4, stim)
        assert 0.0 < r.efficiency <= 1.0
        assert r.events_committed == r.events_processed - r.events_rolled_back

    def test_gvt_rounds_run(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        r = run_tw(medium_circuit, 4, stim, gvt_interval=64)
        assert r.gvt_rounds > 0

    def test_optimism_window_reduces_rolled_back_work(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=30, seed=2)
        free = run_tw(medium_circuit, 4, stim, name="Multilevel")
        tight = run_tw(
            medium_circuit, 4, stim, name="Multilevel",
            optimism_window=stim.period,
        )
        assert tight.events_rolled_back <= free.events_rolled_back

    def test_deterministic_runs(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=2)
        a = run_tw(medium_circuit, 4, stim)
        b = run_tw(medium_circuit, 4, stim)
        assert a.execution_time == b.execution_time
        assert a.events_processed == b.events_processed
        assert a.rollbacks == b.rollbacks
        assert a.app_messages == b.app_messages
        assert a.final_values == b.final_values


class TestOracle:
    """TW must quiesce to the sequential result for every partitioner."""

    @pytest.mark.parametrize(
        "name",
        ["Random", "DFS", "Cluster", "Topological", "Multilevel", "ConePartition"],
    )
    @pytest.mark.parametrize("k", [2, 5])
    def test_matches_sequential(self, medium_circuit, name, k):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        tw = run_tw(medium_circuit, k, stim, name=name)
        assert tw.final_values == seq.final_values

    def test_matches_sequential_with_window(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        tw = run_tw(medium_circuit, 5, stim, name="Multilevel",
                    optimism_window=10)
        assert tw.final_values == seq.final_values

    def test_matches_on_s27(self, s27):
        stim = RandomStimulus(s27, num_cycles=30, seed=11)
        seq = SequentialSimulator(s27, stim).run()
        tw = run_tw(s27, 3, stim)
        assert tw.final_values == seq.final_values


class TestProtocolInternals:
    def test_trace_hook_sees_processing(self, s27):
        stim = RandomStimulus(s27, num_cycles=10, seed=1)
        assignment = get_partitioner("Random", seed=3).partition(s27, 2)
        ops = []
        sim = TimeWarpSimulator(
            s27, assignment, stim, VirtualMachine(num_nodes=2),
            trace_hook=lambda op, *a: ops.append(op),
        )
        result = sim.run()
        assert ops.count("process") == result.events_processed

    def test_every_cancelled_emission_is_resolved(self, medium_circuit):
        """Conservation law: each cancelled emission is annihilated
        exactly once (pending, processed, stashed or on arrival)."""
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        assignment = get_partitioner("Cluster", seed=3).partition(
            medium_circuit, 4
        )
        counts = {}

        def hook(op, *args):
            counts[op] = counts.get(op, 0) + 1

        sim = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4),
            trace_hook=hook,
        )
        result = sim.run()
        assert result.rollbacks > 0, "want a run that actually rolls back"
        cancelled = counts.get("emission_cancelled", 0)
        resolved = (
            counts.get("annihilate_pending", 0)
            + counts.get("annihilate_processed", 0)
            + counts.get("annihilate_on_arrival", 0)
        )
        assert cancelled == resolved

    def test_max_events_guard(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=1)
        assignment = get_partitioner("Random", seed=3).partition(
            medium_circuit, 2
        )
        sim = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=2), max_events=50,
        )
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()


class TestConfiguration:
    def test_k_must_match_nodes(self, s27):
        stim = RandomStimulus(s27, num_cycles=5, seed=1)
        assignment = get_partitioner("Random", seed=3).partition(s27, 2)
        with pytest.raises(SimulationError, match="machine has"):
            TimeWarpSimulator(s27, assignment, stim, VirtualMachine(num_nodes=3))

    def test_foreign_assignment_rejected(self, s27, small_circuit):
        stim = RandomStimulus(s27, num_cycles=5, seed=1)
        foreign = get_partitioner("Random", seed=3).partition(small_circuit, 2)
        with pytest.raises(SimulationError, match="different circuit"):
            TimeWarpSimulator(s27, foreign, stim, VirtualMachine(num_nodes=2))

    def test_machine_validation(self):
        with pytest.raises(ConfigError):
            VirtualMachine(num_nodes=0)
        with pytest.raises(ConfigError):
            VirtualMachine(num_nodes=2, gvt_interval=0)
        with pytest.raises(ConfigError):
            VirtualMachine(num_nodes=2, optimism_window=0)

    def test_cost_model_validation(self):
        with pytest.raises(ConfigError):
            TimeWarpCostModel(event_cost=0.0)
        with pytest.raises(ConfigError):
            TimeWarpCostModel(rollback_event_cost=-1.0)
        # Regression: these three used to slip through unvalidated.
        with pytest.raises(ConfigError):
            TimeWarpCostModel(coast_event_cost=-1e-6)
        with pytest.raises(ConfigError):
            TimeWarpCostModel(state_save_cost=-1e-6)
        with pytest.raises(ConfigError):
            TimeWarpCostModel(migrate_lp_cost=-1e-6)

    def test_cost_model_state_save_share_bounded(self):
        # state_save_cost is the share of event_cost spent on state
        # saving; at or above the whole event cost the checkpoint-mode
        # per-event charge would go non-positive (the kernel used to
        # clamp it silently).
        with pytest.raises(ConfigError, match="state_save_cost"):
            TimeWarpCostModel(event_cost=100e-6, state_save_cost=100e-6)
        with pytest.raises(ConfigError, match="state_save_cost"):
            TimeWarpCostModel(event_cost=100e-6, state_save_cost=150e-6)
        # Strictly smaller is fine, including zero.
        TimeWarpCostModel(event_cost=100e-6, state_save_cost=99e-6)
        TimeWarpCostModel(state_save_cost=0.0)

    def test_network_models(self):
        net = UniformNetwork(1e-4)
        assert net.latency(0, 0) == 0.0
        assert net.latency(0, 1) == 1e-4
        assert FastEthernet().latency(1, 2) == pytest.approx(150e-6)
        with pytest.raises(ConfigError):
            UniformNetwork(0.0)

    def test_network_latency_affects_execution_time(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=2)
        fast = run_tw(medium_circuit, 4, stim, network=UniformNetwork(1e-6))
        slow = run_tw(medium_circuit, 4, stim, network=UniformNetwork(5e-3))
        assert slow.execution_time > fast.execution_time

    def test_summary_string(self, s27):
        stim = RandomStimulus(s27, num_cycles=5, seed=1)
        r = run_tw(s27, 2, stim)
        text = r.summary()
        assert "s27" in text and "x2" in text
