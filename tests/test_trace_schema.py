"""Golden trace-schema contract (DESIGN.md §7).

Runs all three engines traced and asserts every emitted record carries
the envelope fields plus its kind's documented required fields — the
analyzers (``repro.obs.report``, ``repro.obs.causality``,
``repro.obs.analyze``) and external consumers key off exactly these.
A kind absent from the table fails the test: extending the schema
means documenting it here AND in DESIGN.md §7.
"""

from __future__ import annotations

import pytest

from repro.obs import TraceWriter, read_trace
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine

#: Envelope every record carries, whoever wrote it.
ENVELOPE = {"ts", "node", "seq", "kind"}

#: kind -> fields required beyond the envelope (DESIGN.md §7).
REQUIRED: dict[str, set[str]] = {
    "run_start": {"engine", "circuit", "cycles"},
    "run_end": {"engine", "events", "emissions"},
    "rollback": {
        "rid", "lp", "depth", "t",
        "cause_kind", "cause_uid", "cause_src", "cause_node", "cause_t",
        "antis",
    },
    "commit": {"lp", "n", "t_lo", "t_hi"},
    "gvt_round": {"cid", "gvt", "final", "latency", "trips"},
    "inbox_depth": {"depth", "gvt", "cid"},
    "node_summary": {
        "busy", "wall", "events", "rollbacks", "rolled_back", "antis",
        "sent_remote", "sent_local", "gvt_rounds", "num_lps", "attr",
    },
    "ckpt": {"cid", "gvt", "bytes", "secs"},
    "restart": {"failed", "to_attempt", "epoch", "gvt", "replayed", "downtime"},
    "migr": {"src", "dst", "lps", "pending", "gvt"},
}


def _assert_schema(records: list[dict], engine: str) -> set[str]:
    assert records, f"{engine}: trace is empty"
    seen: set[str] = set()
    last_seq: dict[int, int] = {}
    for record in records:
        missing = ENVELOPE - record.keys()
        assert not missing, f"{engine}: record lacks envelope {missing}: {record}"
        kind = record["kind"]
        assert kind in REQUIRED, (
            f"{engine}: emitted undocumented kind {kind!r} — add it to "
            "REQUIRED here and to the DESIGN.md §7 table"
        )
        missing = REQUIRED[kind] - record.keys()
        assert not missing, f"{engine}: {kind} lacks {missing}: {record}"
        seen.add(kind)
        # seq is per-writer monotonic.
        node = record["node"]
        if node in last_seq:
            assert record["seq"] > last_seq[node], (
                f"{engine}: node {node} seq not monotonic"
            )
        last_seq[node] = record["seq"]
    return seen


def test_sequential_schema(s27, tmp_path):
    path = str(tmp_path / "seq.jsonl")
    stimulus = RandomStimulus(s27, num_cycles=10, period=20, seed=3)
    with TraceWriter(path) as tracer:
        SequentialSimulator(s27, stimulus, tracer=tracer).run()
    seen = _assert_schema(read_trace(path), "sequential")
    assert {"run_start", "commit", "run_end"} <= seen


def test_virtual_schema(s27, tmp_path):
    path = str(tmp_path / "virtual.jsonl")
    stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
    assignment = get_partitioner("Random", seed=4).partition(s27, 3)
    with TraceWriter(path) as tracer:
        result = TimeWarpSimulator(
            s27, assignment, stimulus,
            VirtualMachine(num_nodes=3, gvt_interval=64), tracer=tracer,
        ).run()
    assert result.rollbacks > 0
    seen = _assert_schema(read_trace(path), "virtual")
    assert {"rollback", "commit", "gvt_round", "node_summary"} <= seen


def test_process_schema(s27, tmp_path):
    path = str(tmp_path / "process.jsonl")
    stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
    assignment = get_partitioner("Random", seed=1).partition(s27, 2)
    result = ProcessTimeWarpSimulator(
        s27, assignment, stimulus,
        VirtualMachine(num_nodes=2, gvt_interval=32), trace_path=path,
    ).run()
    records = read_trace(path)
    seen = _assert_schema(records, "process")
    assert {"commit", "gvt_round", "inbox_depth", "node_summary"} <= seen
    if result.rollbacks:
        assert "rollback" in seen
    # Rollback cause fields have live values, not just keys: every
    # anti-caused rollback names its cause uid.
    for record in records:
        if record["kind"] == "rollback" and record["cause_kind"] == "anti":
            assert record["cause_uid"] is not None


def test_recovery_schema(s27, monkeypatch, tmp_path):
    """A crashed-and-recovered run's trace keeps the contract, and the
    recovery kinds (``ckpt``, ``restart``) carry their fields."""
    path = str(tmp_path / "recovered.jsonl")
    stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
    assignment = get_partitioner("Multilevel", seed=3).partition(s27, 2)
    monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
    result = ProcessTimeWarpSimulator(
        s27, assignment, stimulus,
        VirtualMachine(num_nodes=2, gvt_interval=32, checkpoint_interval=60),
        trace_path=path, max_restarts=2,
    ).run()
    assert result.restarts == 1
    seen = _assert_schema(read_trace(path), "process+recovery")
    assert {"ckpt", "restart"} <= seen


def test_schema_violation_is_caught(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with TraceWriter(path, node=0) as w:
        w.emit("rollback", lp=1, depth=2, t=0)  # missing cause fields
    with pytest.raises(AssertionError, match="rollback lacks"):
        _assert_schema(read_trace(path), "synthetic")
