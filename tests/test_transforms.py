"""Tests for netlist transforms, verified by equivalence checking."""

import pytest

from repro.circuit import GateType, parse_bench, validate_circuit
from repro.circuit.library import ripple_carry_adder
from repro.circuit.transform import (
    eliminate_dead_logic,
    merge_duplicates,
    optimize,
    sweep_buffers,
)
from repro.errors import SimulationError
from repro.sim.equivalence import check_equivalence


class TestSweepBuffers:
    def test_splices_chain(self):
        c = parse_bench(
            "INPUT(a)\nb1 = BUFF(a)\nb2 = BUFF(b1)\ny = NOT(b2)\nOUTPUT(y)\n"
        )
        swept = sweep_buffers(c)
        assert swept.num_gates == 2
        y = swept.index_of("y")
        assert swept.fanin(y) == [swept.index_of("a")]
        assert check_equivalence(c, swept, runs=3)

    def test_output_buffer_kept(self):
        c = parse_bench("INPUT(a)\ny = BUFF(a)\nOUTPUT(y)\n")
        swept = sweep_buffers(c)
        assert "y" in swept
        assert check_equivalence(c, swept, runs=3)


class TestMergeDuplicates:
    def test_merges_identical_gates(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\n"
            "g1 = AND(a, b)\ng2 = AND(b, a)\n"  # symmetric duplicate
            "y = XOR(g1, g2)\nOUTPUT(y)\n"
        )
        hashed = merge_duplicates(c)
        and_gates = [
            g for g in hashed.gates if g.gate_type is GateType.AND
        ]
        assert len(and_gates) == 1
        assert check_equivalence(c, hashed, runs=4)

    def test_cascaded_merge_reaches_fixpoint(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\n"
            "g1 = AND(a, b)\ng2 = AND(a, b)\n"
            "h1 = NOT(g1)\nh2 = NOT(g2)\n"  # become duplicates after merge
            "y = OR(h1, h2)\nOUTPUT(y)\n"
        )
        hashed = merge_duplicates(c)
        assert hashed.num_gates == 5  # a, b, AND, NOT, OR
        assert check_equivalence(c, hashed, runs=4)

    def test_preserves_output_marking(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\n"
            "g1 = AND(a, b)\ny = AND(a, b)\n"
            "z = NOT(g1)\nOUTPUT(y)\nOUTPUT(z)\n"
        )
        hashed = merge_duplicates(c)
        assert "y" in hashed  # the PO survives the merge
        assert check_equivalence(c, hashed, runs=4)

    def test_dffs_with_same_data_merge(self):
        c = parse_bench(
            "INPUT(a)\nf1 = DFF(a)\nf2 = DFF(a)\n"
            "y = XOR(f1, f2)\nOUTPUT(y)\n"
        )
        hashed = merge_duplicates(c)
        assert len(hashed.dffs) == 1
        assert check_equivalence(c, hashed, runs=4, cycles=10)


class TestDeadLogic:
    def test_removes_unobservable_cone(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\n"
            "y = AND(a, b)\n"
            "dead1 = NOT(a)\ndead2 = XOR(dead1, b)\n"
            "OUTPUT(y)\n",
        )
        live = eliminate_dead_logic(c)
        assert "dead1" not in live and "dead2" not in live
        assert check_equivalence(c, live, runs=3)

    def test_keeps_state_feeding_outputs(self, s27):
        live = eliminate_dead_logic(s27)
        # all of s27 is observable
        assert live.num_gates == s27.num_gates
        assert check_equivalence(s27, live, runs=3)

    def test_keeps_primary_inputs(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(unused)\ny = NOT(a)\nOUTPUT(y)\n"
        )
        live = eliminate_dead_logic(c)
        assert "unused" in live


class TestOptimizePipeline:
    def test_equivalent_on_generated_circuits(self, medium_circuit):
        optimized = optimize(medium_circuit)
        validate_circuit(optimized, allow_dead_logic=True)
        assert optimized.num_gates <= medium_circuit.num_gates
        assert check_equivalence(medium_circuit, optimized, runs=4, cycles=8)

    def test_adder_untouched_logic_still_adds(self):
        adder = ripple_carry_adder(4)
        optimized = optimize(adder)
        assert check_equivalence(adder, optimized, runs=6)

    def test_idempotent(self, small_circuit):
        once = optimize(small_circuit)
        twice = optimize(once)
        assert twice.num_gates == once.num_gates


class TestEquivalenceChecker:
    def test_detects_inequivalence(self):
        a = parse_bench("INPUT(a)\nINPUT(b)\ny = AND(a, b)\nOUTPUT(y)\n")
        b = parse_bench("INPUT(a)\nINPUT(b)\ny = OR(a, b)\nOUTPUT(y)\n")
        report = check_equivalence(a, b, runs=4)
        assert not report
        assert report.mismatches

    def test_rejects_mismatched_interfaces(self):
        a = parse_bench("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n")
        b = parse_bench("INPUT(x)\ny = NOT(x)\nOUTPUT(y)\n")
        with pytest.raises(SimulationError, match="input interfaces"):
            check_equivalence(a, b)

    def test_report_is_truthy_on_match(self, s27):
        report = check_equivalence(s27, s27.copy(), runs=2)
        assert report
        assert report.vectors_tried > 0
