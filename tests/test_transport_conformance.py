"""Transport conformance: the contract every wire transport must honour.

The process backend's node loop is transport-agnostic; what makes that
safe is this suite — a single parameterized contract run against BOTH
substrates (``queue`` pickled inboxes and ``shm`` fixed-width rings):

- every wire tag round-trips the channel intact (MSG with and without
  its recovery tail, anti-messages, TOKEN, GVT incl. the +inf
  quiescence broadcast, CKPT, RESUME);
- delivery is FIFO and recovery sequence numbers arrive monotonic;
- a bounded channel backpressures (``Full``) but never deadlocks once
  the consumer drains;
- a channel nobody drains makes the sender's bounded retry give up with
  a diagnosable ``SimulationError``, not an eternal block;
- records survive a real ``fork()`` process boundary.

Shm-specific sections pin the ring's own guarantees (capacity
validation on attach, corrupt-slot rejection, idempotent
close/unlink/cleanup, no leaked ``/dev/shm`` segments) and
property-test the fixed-width codec with hypothesis: round-trip for
every tag, and *any* single-bit corruption or truncation surfaces as
:class:`~repro.errors.ProtocolError` — never a bare ``struct.error`` or
a silently wrong message.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, SimulationError
from repro.warped.messages import ANTI, POSITIVE, Message
from repro.warped.parallel import backend as backend_mod
from repro.warped.parallel.protocol import (
    CKPT,
    GVT,
    MIGCMD,
    MIGRATE,
    MSG,
    RESUME,
    TOKEN,
    T_INF,
    GvtToken,
)
from repro.warped.parallel.transport import (
    DEFAULT_CAPACITY,
    RECORD_SIZE,
    TRANSPORT_NAMES,
    ShmChannel,
    _pack,
    decode_record,
    encode_migrate,
    encode_record,
    make_transport,
)

_CTX = mp.get_context("fork")


def _msg_fields(msg: Message) -> tuple:
    return (
        msg.time, msg.prio, msg.src, msg.n,
        msg.value, msg.dest, msg.uid, msg.sign,
    )


def _normalize(item: tuple) -> tuple:
    """Wire tuple with embedded Messages flattened for == comparison
    (Message has identity equality on purpose — uid-keyed matching)."""
    return tuple(
        _msg_fields(part) if isinstance(part, Message) else part
        for part in item
    )


def _msg(uid: int, *, sign: int = POSITIVE, value: int = 1) -> Message:
    return Message(100 + uid, 0, 2, uid, value, 5, uid, sign)


# ----------------------------------------------------------------------
# the transport-parameterized contract
# ----------------------------------------------------------------------
@pytest.fixture(params=TRANSPORT_NAMES)
def channels(request):
    """Factory for one attempt's inboxes on the parameterized transport;
    tears every channel and segment down afterwards."""
    made: list = []

    def factory(n: int = 1, maxsize: int | None = None) -> list:
        transport = make_transport(request.param)
        inboxes = transport.make_inboxes(_CTX, n, maxsize)
        made.append((transport, inboxes))
        return inboxes

    factory.transport_name = request.param
    yield factory
    for transport, inboxes in made:
        for chan in inboxes:
            chan.cancel_join_thread()
            try:
                chan.close()
            except (OSError, ValueError):
                pass
        transport.cleanup()


WIRE_SAMPLES = [
    (MSG, 3, _msg(7)),
    (MSG, 4, _msg(8, sign=ANTI)),
    (MSG, 9, _msg(11, value=-1), 2, 41),       # recovery (src, seq) tail
    (TOKEN, GvtToken(cid=5, m_clock=12.0, m_send=T_INF, count=-3)),
    (TOKEN, GvtToken(cid=6, m_clock=T_INF, m_send=T_INF, count=0)),
    (GVT, 9, 128.0),
    (GVT, 12, T_INF),                           # quiescence broadcast
    (CKPT, 1, 4, 96.0),
    (RESUME, 0, 17, 3, _msg(13, sign=ANTI)),
    (MIGCMD, 7, 144.0, 2),                      # migrate order to the hot node
    (TOKEN, GvtToken(                           # load fold riding the token
        cid=8, m_clock=64.0, m_send=T_INF, count=0,
        busy_max=125_000, busy_max_node=1, ev_max=4096,
        busy_min=30, busy_min_node=0,
    )),
]


def test_every_wire_tag_round_trips(channels):
    (chan,) = channels()
    for item in WIRE_SAMPLES:
        chan.put_nowait(item)
    got = [chan.get(timeout=10) for _ in WIRE_SAMPLES]
    assert [_normalize(g) for g in got] == [_normalize(s) for s in WIRE_SAMPLES]


def test_fifo_order_and_seq_monotonicity(channels):
    (chan,) = channels()
    for seq in range(1, 301):
        chan.put_nowait((MSG, 1, _msg(seq % 50, value=seq), 0, seq))
    seqs = []
    for expected in range(1, 301):
        tag, color, msg, src, seq = chan.get(timeout=10)
        assert tag == MSG and src == 0
        assert msg.value == expected, "delivery reordered"
        seqs.append(seq)
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    with pytest.raises(queue_mod.Empty):
        chan.get_nowait()


def test_ckpt_resume_round_trip(channels):
    """The recovery handshake survives the wire: CKPT notifications keep
    (node, cid, gvt) exact and RESUME replays keep the channel-sequence
    tail and the anti sign that replay correctness depends on."""
    (chan,) = channels()
    chan.put_nowait((CKPT, 3, 12, 512.0))
    chan.put_nowait((RESUME, 1, 99, 12, _msg(21, sign=ANTI, value=0)))
    tag, node, cid, gvt = chan.get(timeout=10)
    assert (tag, node, cid, gvt) == (CKPT, 3, 12, 512.0)
    tag, src, seq, color, msg = chan.get(timeout=10)
    assert (tag, src, seq, color) == (RESUME, 1, 99, 12)
    assert msg.sign == ANTI and msg.uid == 21


def test_bounded_backpressure_without_deadlock(channels):
    """A capacity-8 channel against 100 sends: the producer must feel
    Full (blocking in put) yet everything arrives in order once the
    consumer drains — bounded never means deadlock or loss."""
    (chan,) = channels(maxsize=8)
    total = 100
    errors: list = []

    def produce() -> None:
        try:
            for i in range(total):
                chan.put((MSG, 1, _msg(i % 40, value=i)), timeout=30)
        except Exception as exc:  # pragma: no cover - failure capture
            errors.append(exc)

    producer = threading.Thread(target=produce, daemon=True)
    producer.start()
    values = [chan.get(timeout=30)[2].value for _ in range(total)]
    producer.join(timeout=30)
    assert not producer.is_alive() and not errors
    assert values == list(range(total))


def test_full_channel_raises_full(channels):
    (chan,) = channels(maxsize=4)
    for i in range(4):
        chan.put((GVT, i, 1.0), timeout=10)
    with pytest.raises(queue_mod.Full):
        chan.put((GVT, 99, 1.0), timeout=0.2)


def test_retry_then_dead_single(channels, monkeypatch):
    """_put_wire against a full ring nobody drains: bounded retry, then
    a diagnosable failure — never an eternal block."""
    monkeypatch.setattr(backend_mod, "_PUT_RETRIES", 3)
    monkeypatch.setattr(backend_mod, "_PUT_BACKOFF", 0.001)
    (chan,) = channels(maxsize=2)
    for i in range(2):
        chan.put((GVT, i, 1.0), timeout=10)
    with pytest.raises(SimulationError, match="transport put failed"):
        backend_mod._put_wire(chan, (GVT, 9, 2.0))


def test_retry_then_dead_batch(channels, monkeypatch):
    monkeypatch.setattr(backend_mod, "_PUT_RETRIES", 3)
    monkeypatch.setattr(backend_mod, "_PUT_BACKOFF", 0.001)
    (chan,) = channels(maxsize=2)
    for i in range(2):
        chan.put((GVT, i, 1.0), timeout=10)
    with pytest.raises(SimulationError, match="transport put failed"):
        backend_mod._put_wire_batch(chan, [(GVT, 9, 2.0), (GVT, 10, 3.0)])


def test_put_wire_batch_drains_clean(channels):
    """The batched send path delivers everything, in order, on both
    substrates (per-item degradation on queue, one locked write on shm)."""
    (chan,) = channels()
    items = [(GVT, i, float(i)) for i in range(64)]
    backend_mod._put_wire_batch(chan, list(items))
    got = [chan.get(timeout=10) for _ in items]
    assert got == items


def _echo_child(inbox, outbox, total: int) -> None:
    for _ in range(total):
        tag, color, msg = inbox.get(timeout=30)
        outbox.put((MSG, color, _msg(msg.uid, value=msg.value + 1)), timeout=30)


def test_cross_process_delivery(channels):
    """Records survive a real fork() boundary in both directions."""
    parent_inbox, child_inbox = channels(n=2)
    total = 50
    proc = _CTX.Process(
        target=_echo_child, args=(child_inbox, parent_inbox, total)
    )
    proc.start()
    try:
        for i in range(total):
            child_inbox.put((MSG, 2, _msg(i % 30, value=i)), timeout=30)
        echoed = [parent_inbox.get(timeout=30)[2].value for _ in range(total)]
    finally:
        proc.join(timeout=30)
    assert echoed == [i + 1 for i in range(total)]
    assert proc.exitcode == 0


# ----------------------------------------------------------------------
# shm ring specifics
# ----------------------------------------------------------------------
def _shm_channel(capacity: int | None = None):
    transport = make_transport("shm")
    (chan,) = transport.make_inboxes(_CTX, 1, capacity)
    return transport, chan


def test_shm_default_capacity():
    transport, chan = _shm_channel(None)
    try:
        assert chan.capacity == DEFAULT_CAPACITY
    finally:
        chan.close()
        transport.cleanup()


def test_shm_attach_capacity_mismatch():
    transport, chan = _shm_channel(16)
    try:
        chan.put_nowait((GVT, 1, 1.0))
        impostor = ShmChannel(chan.name, 32, _CTX.Lock())
        with pytest.raises(ProtocolError, match="capacity mismatch"):
            impostor.qsize()
        impostor.close()
    finally:
        chan.close()
        transport.cleanup()


def test_shm_corrupt_slot_rejected(monkeypatch):
    """A byte flipped in a published slot must surface as ProtocolError
    (after the store-ordering retry window), never as a wrong Message."""
    monkeypatch.setattr("repro.warped.parallel.transport._POLL_SLEEP", 0.0001)
    transport, chan = _shm_channel(8)
    try:
        chan.put_nowait((MSG, 1, _msg(3)))
        buf = chan._ensure()
        slot = 32  # header size; first record slot
        buf[slot + 20] ^= 0xFF  # payload byte, checksum now stale
        with pytest.raises(ProtocolError, match="corrupt wire record"):
            chan.get_nowait()
    finally:
        chan.close()
        transport.cleanup()


def test_shm_close_and_unlink_idempotent():
    transport, chan = _shm_channel(8)
    chan.put_nowait((GVT, 1, 1.0))
    chan.close()
    chan.close()
    chan.unlink()
    chan.unlink()
    transport.cleanup()
    transport.cleanup()
    with pytest.raises(OSError):
        chan.qsize()  # closed channels refuse to re-attach


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm")
def test_shm_cleanup_removes_segments():
    transport = make_transport("shm")
    inboxes = transport.make_inboxes(_CTX, 3, None)
    names = {chan.name for chan in inboxes}
    live = set(os.listdir("/dev/shm"))
    assert names <= live, "segments not backed by /dev/shm files"
    for chan in inboxes:
        chan.close()
    transport.cleanup()
    assert not (names & set(os.listdir("/dev/shm"))), "cleanup leaked segments"


# ----------------------------------------------------------------------
# codec properties (hypothesis)
# ----------------------------------------------------------------------
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_floats = st.floats(allow_nan=False)  # inf allowed: T_INF rides the wire
_signs = st.sampled_from((POSITIVE, ANTI))
_messages = st.tuples(i64, i64, i64, i64, i64, i64, i64, _signs).map(
    lambda t: Message(*t)
)

wire_items = st.one_of(
    st.tuples(st.just(MSG), i64, _messages),
    st.tuples(st.just(MSG), i64, _messages, i64, i64),
    st.tuples(st.just(RESUME), i64, i64, i64, _messages),
    st.builds(
        GvtToken, cid=i64, m_clock=_floats, m_send=_floats, count=i64,
        busy_max=i64, busy_max_node=i64, ev_max=i64,
        busy_min=i64, busy_min_node=i64,
    ).map(lambda token: (TOKEN, token)),
    st.tuples(st.just(GVT), i64, _floats),
    st.tuples(st.just(CKPT), i64, i64, _floats),
    st.tuples(st.just(MIGCMD), i64, _floats, i64),
)


@settings(max_examples=200, deadline=None)
@given(item=wire_items)
def test_codec_round_trips_every_tag(item):
    record = encode_record(item)
    assert len(record) == RECORD_SIZE
    assert _normalize(decode_record(record)) == _normalize(item)


@settings(max_examples=200, deadline=None)
@given(
    item=wire_items,
    index=st.integers(0, RECORD_SIZE - 1),
    bit=st.integers(0, 7),
)
def test_codec_rejects_any_single_bit_corruption(item, index, bit):
    record = bytearray(encode_record(item))
    record[index] ^= 1 << bit
    with pytest.raises(ProtocolError):
        decode_record(bytes(record))


@settings(max_examples=60, deadline=None)
@given(item=wire_items, cut=st.integers(0, RECORD_SIZE - 1))
def test_codec_rejects_truncation(item, cut):
    record = encode_record(item)
    with pytest.raises(ProtocolError, match="truncated"):
        decode_record(record[:cut])
    with pytest.raises(ProtocolError, match="truncated"):
        decode_record(record + b"\x00")


def test_codec_rejects_unknown_tag():
    with pytest.raises(ProtocolError, match="cannot encode"):
        encode_record(("nonsense", 1, 2))
    # A structurally valid record with a tag byte the protocol never
    # assigns (checksum intact, so the tag check is what fires).
    with pytest.raises(ProtocolError, match="unknown wire record tag"):
        decode_record(_pack(250, 0, (1, 2)))


def test_codec_field_overflow_is_protocol_error():
    too_big = Message(2**63, 0, 0, 0, 0, 0, 0)
    with pytest.raises(ProtocolError, match="out of range"):
        encode_record((MSG, 0, too_big))


# ----------------------------------------------------------------------
# MIGRATE blobs: variable-length LP freight over both transports
# ----------------------------------------------------------------------
def _migrate_payload(n_lps: int = 3, n_pending: int = 4) -> dict:
    return {
        "gates": list(range(n_lps)),
        "lps": {
            i: ([1, 0], 1, (100 + i, 0, 0, i), [], i) for i in range(n_lps)
        },
        "queue": [_msg(50 + i) for i in range(n_pending)],
        "waiting_antis": {99: _msg(99, sign=ANTI)},
        "capture_log": {(0, 2): 1},
    }


def _assert_payloads_match(got: dict, sent: dict) -> None:
    assert got["gates"] == sent["gates"]
    assert got["lps"].keys() == sent["lps"].keys()
    for key in sent["lps"]:
        assert got["lps"][key][:3] == sent["lps"][key][:3]
    assert [_msg_fields(m) for m in got["queue"]] == [
        _msg_fields(m) for m in sent["queue"]
    ]
    assert {
        uid: _msg_fields(m) for uid, m in got["waiting_antis"].items()
    } == {uid: _msg_fields(m) for uid, m in sent["waiting_antis"].items()}
    assert got["capture_log"] == sent["capture_log"]


def test_migrate_blob_round_trips(channels):
    (chan,) = channels()
    payload = _migrate_payload()
    chan.put_nowait((MIGRATE, 3, 0, 7, payload))
    tag, color, src, cid, got = chan.get(timeout=10)
    assert (tag, color, src, cid) == (MIGRATE, 3, 0, 7)
    _assert_payloads_match(got, payload)


def test_migrate_interleaves_fifo_with_fixed_records(channels):
    """A chunked blob between fixed records must not reorder the
    channel: FIFO is what the GVT-before-MIGCMD ordering relies on."""
    (chan,) = channels()
    chan.put_nowait((GVT, 4, 64.0))
    chan.put_nowait((MIGRATE, 1, 0, 4, _migrate_payload(n_lps=8)))
    chan.put_nowait((MSG, 2, _msg(21)))
    assert chan.get(timeout=10)[0] == GVT
    assert chan.get(timeout=10)[0] == MIGRATE
    assert chan.get(timeout=10)[0] == MSG


def test_migrate_announcement_round_trips(channels):
    """Ownership announcements (no 'lps' key) ride the same tag."""
    (chan,) = channels()
    ann = {"gates": [4, 9], "owner": 2}
    chan.put_nowait((MIGRATE, 5, 2, 9, ann))
    tag, color, src, cid, got = chan.get(timeout=10)
    assert (tag, color, src, cid, got) == (MIGRATE, 5, 2, 9, ann)


def test_shm_migrate_blob_is_all_or_nothing():
    """A blob that does not fit leaves the ring untouched (Full), and
    succeeds verbatim once space frees up — no partial chunk runs."""
    transport, chan = _shm_channel(64)
    try:
        payload = _migrate_payload(n_lps=6, n_pending=12)
        nchunks = len(encode_migrate((MIGRATE, 1, 0, 3, payload)))
        assert 4 < nchunks <= 64  # spans many slots, fits an empty ring
        backlog = 64 - nchunks + 1  # one slot short of fitting the blob
        for i in range(backlog):
            chan.put_nowait((GVT, i, float(i)))
        with pytest.raises(queue_mod.Full):
            chan.put_nowait((MIGRATE, 1, 0, 3, payload))
        # Nothing was written: the backlog drains clean...
        for i in range(backlog):
            assert chan.get_nowait() == (GVT, i, float(i))
        # ... and the retry lands intact.
        chan.put_nowait((MIGRATE, 1, 0, 3, payload))
        tag, _, _, _, got = chan.get_nowait()
        assert tag == MIGRATE
        _assert_payloads_match(got, payload)
    finally:
        chan.close()
        transport.cleanup()


def test_shm_migrate_blob_larger_than_ring_rejected():
    transport, chan = _shm_channel(4)
    try:
        with pytest.raises(ProtocolError, match="capacity"):
            chan.put_nowait(
                (MIGRATE, 1, 0, 3, _migrate_payload(n_lps=40, n_pending=80))
            )
    finally:
        chan.close()
        transport.cleanup()


def test_shm_put_batch_rejects_migrate():
    transport, chan = _shm_channel(8)
    try:
        with pytest.raises(ProtocolError, match="batch"):
            chan.put_batch([(MIGRATE, 1, 0, 3, _migrate_payload())])
    finally:
        chan.close()
        transport.cleanup()
