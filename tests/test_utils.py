"""Tests for the utils subpackage (rng plumbing, ASCII rendering)."""

import numpy as np
import pytest

from repro.utils.rng import (
    DEFAULT_SEED,
    ReservoirSampler,
    derive_rng,
    make_rng,
    spawn_seeds,
)
from repro.utils.tables import ascii_plot, format_series, format_table


class TestRng:
    def test_none_maps_to_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen

    def test_derive_rng_independent_streams(self):
        a = derive_rng(7, "alpha")
        b = derive_rng(7, "beta")
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "alpha", 3)
        b = derive_rng(7, "alpha", 3)
        assert list(a.integers(0, 100, 5)) == list(b.integers(0, 100, 5))

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(1, 4) == spawn_seeds(1, 4)
        assert len(set(spawn_seeds(1, 16))) == 16

    def test_reservoir_uniformish(self):
        sampler = ReservoirSampler(capacity=10, rng=0)
        for i in range(1000):
            sampler.offer(i)
        assert len(sampler.sample) == 10
        assert sampler.seen == 1000

    def test_reservoir_small_stream(self):
        sampler = ReservoirSampler(capacity=10, rng=0)
        for i in range(3):
            sampler.offer(i)
        assert sorted(sampler.sample) == [0, 1, 2]

    def test_reservoir_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["name", "x"], [("a", 1.5), ("bb", 22.25)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "22.25" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="Hello")
        assert text.startswith("Hello")

    def test_nan_renders_as_dash(self):
        text = format_table(["a"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_format_series(self):
        text = format_series("alg", [1, 2], {"X": [0.5, 1.0], "Y": [2, 3]})
        assert "X" in text and "Y" in text
        with pytest.raises(ValueError, match="points"):
            format_series("alg", [1, 2], {"X": [0.5]})

    def test_ascii_plot_contains_legend_and_bounds(self):
        text = ascii_plot({"up": [1.0, 2.0, 4.0]}, [1, 2, 3], title="T")
        assert "T" in text and "up" in text
        assert "4" in text and "1" in text

    def test_ascii_plot_degenerate_inputs(self):
        assert ascii_plot({}, [], title="x") == "x"
        flat = ascii_plot({"f": [1.0, 1.0]}, [1, 2])
        assert "f" in flat
