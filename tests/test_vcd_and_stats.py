"""Tests for VCD export, peak-history stats and work balancing."""

import pytest

from repro.circuit.netlists import load_s27
from repro.errors import SimulationError
from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator, Trace
from repro.sim.vcd import _identifier, write_vcd
from repro.warped import TimeWarpSimulator, VirtualMachine


@pytest.fixture(scope="module")
def traced_run():
    circuit = load_s27()
    trace = Trace(circuit)  # watch everything
    stim = RandomStimulus(circuit, num_cycles=20, seed=4)
    result = SequentialSimulator(circuit, stim, trace=trace).run()
    return circuit, trace, result


class TestVcd:
    def test_identifiers_unique_and_printable(self):
        ids = [_identifier(i) for i in range(2000)]
        assert len(set(ids)) == 2000
        for code in ids:
            assert all(33 <= ord(c) <= 126 for c in code)

    def test_header_and_vars(self, traced_run):
        circuit, trace, _ = traced_run
        vcd = write_vcd(trace)
        assert "$timescale 1 ns $end" in vcd
        assert f"$scope module {circuit.name} $end" in vcd
        assert "$enddefinitions $end" in vcd
        assert "G17" in vcd

    def test_changes_time_ordered(self, traced_run):
        _, trace, _ = traced_run
        vcd = write_vcd(trace)
        times = [
            int(line[1:]) for line in vcd.splitlines() if line.startswith("#")
        ]
        assert times == sorted(times)
        assert times, "expected at least one timestamped change"

    def test_final_values_match_simulation(self, traced_run):
        circuit, trace, result = traced_run
        vcd = write_vcd(trace)
        # last change recorded for the primary output equals the final value
        g17 = circuit.index_of("G17")
        last_value = trace.changes(g17)[-1][1]
        assert last_value == result.final_values[g17]
        assert str(last_value) in vcd

    def test_gate_subset(self, traced_run):
        circuit, trace, _ = traced_run
        g17 = circuit.index_of("G17")
        vcd = write_vcd(trace, gates=[g17])
        assert vcd.count("$var wire") == 1

    def test_empty_selection_rejected(self, traced_run):
        circuit, trace, _ = traced_run
        quiet = [
            g for g in range(circuit.num_gates) if not trace.changes(g)
        ]
        with pytest.raises(SimulationError, match="no changes"):
            write_vcd(trace, gates=quiet or [])


class TestPeakHistory:
    def test_fossil_collection_bounds_memory(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=30, seed=2)
        assignment = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 4
        )
        frequent = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, gvt_interval=64),
        ).run()
        rare = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, gvt_interval=4096),
        ).run()
        assert frequent.peak_history > 0
        assert frequent.peak_history <= rare.peak_history
        assert frequent.final_values == rare.final_values

    def test_peak_tracked_between_gvt_rounds(self, medium_circuit):
        # Regression (ISSUE 3 satellite): the peak used to be sampled
        # only inside run_gvt_round, so a run whose gvt_interval
        # exceeds its event count reported zero. On a single node no
        # event ever rolls back and no fossil sweep fires before
        # quiescence, so the true high-water mark is exactly the full
        # history — which only incremental tracking can see.
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=2)
        assignment = get_partitioner("Random", seed=1).partition(
            medium_circuit, 1
        )
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=1, gvt_interval=10**9),
        ).run()
        assert result.rollbacks == 0
        assert result.gvt_rounds == 0
        assert result.peak_history == result.events_processed


class TestWorkBalancing:
    def test_vertex_weights_rebalance_load(self, medium_circuit):
        from repro.partition.extra_activity import (
            ActivityMultilevelPartitioner,
        )
        from repro.sim.activity import profile_activity

        profile = profile_activity(medium_circuit, num_cycles=12, seed=5)

        def work_imbalance(assignment, k):
            load = [0] * k
            for gate in range(medium_circuit.num_gates):
                work = 1 + profile.changes[gate] + sum(
                    profile.changes[d] for d in medium_circuit.fanin(gate)
                )
                load[assignment[gate]] += work
            return max(load) / (sum(load) / k)

        weighted = ActivityMultilevelPartitioner(
            seed=3, profile=profile, balance_work=True
        ).partition(medium_circuit, 6)
        unweighted = ActivityMultilevelPartitioner(
            seed=3, profile=profile, balance_work=False
        ).partition(medium_circuit, 6)
        assert work_imbalance(weighted.assignment, 6) <= work_imbalance(
            unweighted.assignment, 6
        ) + 0.05

    def test_vertex_weights_validated(self, s27):
        from repro.partition.multilevel import CoarseGraph

        with pytest.raises(Exception, match="vertex_weights"):
            CoarseGraph.from_circuit(s27, vertex_weights=[1, 2, 3])

    def test_oracle_with_work_balancing(self, medium_circuit):
        from repro.partition.extra_activity import (
            ActivityMultilevelPartitioner,
        )

        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = ActivityMultilevelPartitioner(seed=3).partition(
            medium_circuit, 4
        )
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert tw.final_values == seq.final_values
