"""Unit tests for elaboration, code generation and the VHDL writer."""

import pytest

from repro.circuit import GateType, load_benchmark, parse_bench
from repro.errors import ElaborationError, VHDLError
from repro.vhdl import elaborate, generate_python, parse_vhdl, write_vhdl
from repro.vhdl.elaborate import lookup_primitive

BASIC = """
entity top is
  port (a, b : in std_logic; y : out std_logic);
end entity;
architecture s of top is
  signal t : std_logic;
begin
  u0 : nand2 port map (a => a, b => b, y => t);
  u1 : inv port map (a => t, y => y);
end architecture;
"""


class TestPrimitives:
    def test_standard_cells(self):
        assert lookup_primitive("nand2").gate_type is GateType.NAND
        assert lookup_primitive("xor3").arity == 3
        assert lookup_primitive("dff").output_port == "q"
        assert lookup_primitive("inv").input_ports == ["a"]

    def test_wide_gates_resolved_on_demand(self):
        prim = lookup_primitive("and17")
        assert prim.arity == 17
        assert len(prim.input_ports) == 17
        assert len(set(prim.input_ports)) == 17
        assert prim.input_ports[-1] == "in16"

    def test_unknown_primitive(self):
        with pytest.raises(ElaborationError, match="unknown primitive"):
            lookup_primitive("alu74181")


class TestElaborate:
    def test_basic_netlist(self):
        circuit = elaborate(parse_vhdl(BASIC))
        assert circuit.num_gates == 4  # a, b, t, y
        assert circuit.gates[circuit.index_of("t")].gate_type is GateType.NAND
        assert circuit.gates[circuit.index_of("y")].gate_type is GateType.NOT
        assert circuit.primary_outputs == [circuit.index_of("y")]

    def test_multiple_drivers_rejected(self):
        bad = BASIC.replace(
            "u1 : inv port map (a => t, y => y);",
            "u1 : inv port map (a => t, y => y);\n"
            "u2 : inv port map (a => a, y => t);",
        )
        with pytest.raises(ElaborationError, match="driven by both"):
            elaborate(parse_vhdl(bad))

    def test_unconnected_port_rejected(self):
        bad = BASIC.replace(
            "u0 : nand2 port map (a => a, b => b, y => t);",
            "u0 : nand2 port map (a => a, y => t);",
        )
        with pytest.raises(ElaborationError, match="unconnected"):
            elaborate(parse_vhdl(bad))

    def test_unknown_signal_rejected(self):
        bad = BASIC.replace("(a => t, y => y)", "(a => ghost, y => y)")
        with pytest.raises(ElaborationError, match="unknown signal"):
            elaborate(parse_vhdl(bad))

    def test_undriven_output_rejected(self):
        bad = """
        entity top is port (a : in std_logic; y : out std_logic); end entity;
        architecture s of top is begin
          u0 : inv port map (a => a, y => a2);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="unknown signal"):
            elaborate(parse_vhdl(bad))

    def test_output_never_driven(self):
        bad = """
        entity top is port (a : in std_logic; y : out std_logic); end entity;
        architecture s of top is signal t : std_logic; begin
          u0 : inv port map (a => a, y => t);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="never driven"):
            elaborate(parse_vhdl(bad))

    def test_duplicate_association_rejected(self):
        bad = BASIC.replace("(a => a, b => b, y => t)", "(a => a, a => b, y => t)")
        with pytest.raises(ElaborationError, match="associated twice"):
            elaborate(parse_vhdl(bad))

    def test_component_declaration_shape_checked(self):
        bad = """
        entity top is port (a : in std_logic; y : out std_logic); end entity;
        architecture s of top is
          component inv is
            port (a, b : in std_logic; y : out std_logic);
          end component;
        begin
          u0 : inv port map (a => a, y => y);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="does not match"):
            elaborate(parse_vhdl(bad))

    def test_top_selection(self):
        two = BASIC + BASIC.replace("top", "other")
        circuit = elaborate(parse_vhdl(two), top="top")
        assert circuit.name == "top"
        with pytest.raises(ElaborationError, match="no entity"):
            elaborate(parse_vhdl(two), top="missing")


class TestWriterRoundTrip:
    def test_s27_round_trip(self, s27):
        text = write_vhdl(s27)
        again = elaborate(parse_vhdl(text))
        assert again.num_gates == s27.num_gates
        assert again.num_edges == s27.num_edges
        assert len(again.dffs) == len(s27.dffs)

    def test_generated_circuit_round_trip(self, small_circuit):
        again = elaborate(parse_vhdl(write_vhdl(small_circuit)))
        assert again.num_gates == small_circuit.num_gates
        assert again.num_edges == small_circuit.num_edges
        # adjacency preserved by (case-folded) names
        for gate in small_circuit.gates:
            twin = again.gates[again.index_of(gate.name.lower())]
            assert twin.gate_type == gate.gate_type
            assert sorted(
                small_circuit.gates[d].name.lower() for d in gate.fanin
            ) == sorted(again.gates[d].name.lower() for d in twin.fanin)

    def test_benchmark_round_trip(self):
        circuit = load_benchmark("s5378", scale=0.05)
        again = elaborate(parse_vhdl(write_vhdl(circuit)))
        assert again.num_edges == circuit.num_edges

    def test_write_requires_frozen(self):
        from repro.circuit import CircuitGraph

        with pytest.raises(VHDLError, match="freeze"):
            write_vhdl(CircuitGraph())

    def test_simulation_equivalence_through_vhdl(self, s27):
        """The re-elaborated circuit simulates identically (by name)."""
        from repro.sim import RandomStimulus, SequentialSimulator

        again = elaborate(parse_vhdl(write_vhdl(s27)), name="s27")
        stim_a = RandomStimulus(s27, num_cycles=15, seed=3)
        stim_b = RandomStimulus(again, num_cycles=15, seed=3)
        res_a = SequentialSimulator(s27, stim_a).run()
        res_b = SequentialSimulator(again, stim_b).run()
        assert res_a.value_of(s27, "G17") == res_b.value_of(again, "g17")


class TestCodegen:
    def test_generated_module_builds_and_simulates(self):
        source = generate_python(parse_vhdl(BASIC))
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        circuit = namespace["build"]()
        assert circuit.num_gates == 4
        result = namespace["simulate"](num_cycles=5, seed=1)
        assert result.events_processed > 0

    def test_generated_module_matches_direct_elaboration(self, s27):
        design = parse_vhdl(write_vhdl(s27))
        source = generate_python(design)
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        built = namespace["build"]()
        direct = elaborate(design)
        assert built.num_gates == direct.num_gates
        assert sorted(built.edges()) == sorted(direct.edges())
