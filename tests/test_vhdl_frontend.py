"""Unit tests for the VHDL lexer and parser."""

import pytest

from repro.errors import VHDLLexError, VHDLParseError
from repro.vhdl import parse_vhdl, tokenize
from repro.vhdl.lexer import TokenKind


class TestLexer:
    def test_identifiers_case_folded(self):
        tokens = tokenize("Entity FOO Is")
        assert [t.text for t in tokens[:-1]] == ["entity", "foo", "is"]
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_comments_skipped(self):
        tokens = tokenize("a -- the rest is noise ; () entity\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_punctuation_and_arrow(self):
        tokens = tokenize("port map (a => b);")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [
            TokenKind.KEYWORD, TokenKind.KEYWORD, TokenKind.LPAREN,
            TokenKind.IDENT, TokenKind.ARROW, TokenKind.IDENT,
            TokenKind.RPAREN, TokenKind.SEMI,
        ]

    def test_extended_identifier(self):
        tokens = tokenize(r"\Gate[3]\ : inv")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == r"\Gate[3]\ ".strip()

    def test_unterminated_extended_identifier(self):
        with pytest.raises(VHDLLexError, match="unterminated"):
            tokenize("\\oops")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_illegal_character(self):
        with pytest.raises(VHDLLexError, match="unexpected character"):
            tokenize("a ? b")

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INTEGER


GOOD = """
library ieee;
use ieee.std_logic_1164.all;
entity top is
  port (a, b : in std_logic; y : out std_logic);
end entity top;
architecture rtl of top is
  component nand2 is
    port (a, b : in std_logic; y : out std_logic);
  end component;
  signal t : std_logic;
begin
  u0 : nand2 port map (a => a, b => b, y => t);
  u1 : nand2 port map (t, t, y);
end architecture rtl;
"""


class TestParser:
    def test_good_design_parses(self):
        design = parse_vhdl(GOOD)
        assert set(design.entities) == {"top"}
        entity = design.entities["top"]
        assert [p.name for p in entity.input_ports] == ["a", "b"]
        assert [p.name for p in entity.output_ports] == ["y"]
        arch = design.architecture_of("top")
        assert arch.name == "rtl"
        assert len(arch.instantiations) == 2
        assert arch.instantiations[0].label == "u0"
        assert [s.name for s in arch.signals] == ["t"]

    def test_positional_associations(self):
        design = parse_vhdl(GOOD)
        inst = design.architecture_of("top").instantiations[1]
        assert all(a.formal is None for a in inst.associations)
        assert [a.actual for a in inst.associations] == ["t", "t", "y"]

    def test_positional_after_named_rejected(self):
        bad = GOOD.replace(
            "u1 : nand2 port map (t, t, y);",
            "u1 : nand2 port map (a => t, t, y);",
        )
        with pytest.raises(VHDLParseError, match="positional association"):
            parse_vhdl(bad)

    def test_mismatched_entity_close_rejected(self):
        with pytest.raises(VHDLParseError, match="closed as"):
            parse_vhdl("entity a is end entity b;")

    def test_duplicate_entity_rejected(self):
        with pytest.raises(VHDLParseError, match="twice"):
            parse_vhdl("entity a is end entity;\nentity a is end entity;")

    def test_architecture_of_unknown_entity_rejected(self):
        with pytest.raises(VHDLParseError, match="unknown entity"):
            parse_vhdl("architecture x of ghost is begin end;")

    def test_inout_unsupported(self):
        with pytest.raises(VHDLParseError, match="inout"):
            parse_vhdl(
                "entity a is port (x : inout std_logic); end entity;"
            )

    def test_garbage_top_level(self):
        with pytest.raises(VHDLParseError, match="expected entity"):
            parse_vhdl("banana;")

    def test_last_architecture_wins(self):
        two = GOOD + GOOD.split("end entity top;")[1].replace(
            "architecture rtl", "architecture rtl2"
        )
        design = parse_vhdl(two)
        assert design.architecture_of("top").name == "rtl2"
