"""Tests for hierarchical VHDL elaboration (entities inside entities)."""

import pytest

from repro.errors import ElaborationError
from repro.sim import SequentialSimulator, VectorStimulus
from repro.vhdl import elaborate, parse_vhdl

HALF_ADDER = """
entity half_adder is
  port (a, b : in std_logic; s, c : out std_logic);
end entity;
architecture rtl of half_adder is
begin
  u_s : xor2 port map (a => a, b => b, y => s);
  u_c : and2 port map (a => a, b => b, y => c);
end architecture;
"""

FULL_ADDER = HALF_ADDER + """
entity full_adder is
  port (a, b, cin : in std_logic; s, cout : out std_logic);
end entity;
architecture rtl of full_adder is
  signal s1, c1, c2 : std_logic;
begin
  ha0 : half_adder port map (a => a, b => b, s => s1, c => c1);
  ha1 : half_adder port map (a => s1, b => cin, s => s, c => c2);
  u_or : or2 port map (a => c1, b => c2, y => cout);
end architecture;
"""

TWO_BIT_ADDER = FULL_ADDER + """
entity adder2 is
  port (a0, a1, b0, b1, cin : in std_logic;
        s0, s1, cout : out std_logic);
end entity;
architecture rtl of adder2 is
  signal carry : std_logic;
begin
  fa0 : full_adder port map (a => a0, b => b0, cin => cin,
                             s => s0, cout => carry);
  fa1 : full_adder port map (a => a1, b => b1, cin => carry,
                             s => s1, cout => cout);
end architecture;
"""


class TestHierarchy:
    def test_one_level(self):
        circuit = elaborate(parse_vhdl(FULL_ADDER), top="full_adder")
        # 3 PIs + (2 gates per half adder) * 2 + 1 OR = 8 gates
        assert circuit.num_gates == 8
        # hierarchical signals got qualified names
        assert "ha0/s" not in circuit  # port-bound, aliased to s1
        assert circuit.index_of("s1") >= 0

    def test_two_levels_computes_addition(self):
        circuit = elaborate(parse_vhdl(TWO_BIT_ADDER), top="adder2")
        for a in range(4):
            for b in range(4):
                vec = {
                    "a0": a & 1, "a1": (a >> 1) & 1,
                    "b0": b & 1, "b1": (b >> 1) & 1,
                    "cin": 0,
                }
                stim = VectorStimulus(circuit, [vec, vec])
                result = SequentialSimulator(circuit, stim).run()
                total = (
                    result.value_of(circuit, "s0")
                    + (result.value_of(circuit, "s1") << 1)
                    + (result.value_of(circuit, "cout") << 2)
                )
                assert total == a + b, (a, b)

    def test_internal_names_qualified(self):
        circuit = elaborate(parse_vhdl(TWO_BIT_ADDER), top="adder2")
        assert "fa0/s1" in circuit
        assert "fa1/c1" in circuit

    def test_positional_binding_into_entity(self):
        src = FULL_ADDER + """
        entity wrap is
          port (x, y, z : in std_logic; q, r : out std_logic);
        end entity;
        architecture rtl of wrap is begin
          fa : full_adder port map (x, y, z, q, r);
        end architecture;
        """
        circuit = elaborate(parse_vhdl(src), top="wrap")
        stim = VectorStimulus(circuit, [{"x": 1, "y": 1, "z": 1}] * 2)
        result = SequentialSimulator(circuit, stim).run()
        assert result.value_of(circuit, "q") == 1  # 1+1+1 = 11b
        assert result.value_of(circuit, "r") == 1

    def test_entity_shadows_primitive(self):
        # an entity named xor2 overrides the library cell
        src = """
        entity xor2 is
          port (a, b : in std_logic; y : out std_logic);
        end entity;
        architecture odd of xor2 is
          signal na, nb, t1, t2 : std_logic;
        begin
          u1 : inv port map (a => a, y => na);
          u2 : inv port map (a => b, y => nb);
          u3 : and2 port map (a => a, b => nb, y => t1);
          u4 : and2 port map (a => na, b => b, y => t2);
          u5 : or2 port map (a => t1, b => t2, y => y);
        end architecture;
        entity top is
          port (p, q : in std_logic; y : out std_logic);
        end entity;
        architecture rtl of top is begin
          u : xor2 port map (a => p, b => q, y => y);
        end architecture;
        """
        circuit = elaborate(parse_vhdl(src), top="top")
        assert circuit.num_gates == 2 + 5  # discrete XOR, not the cell
        stim = VectorStimulus(circuit, [{"p": 1, "q": 0}] * 2)
        result = SequentialSimulator(circuit, stim).run()
        assert result.value_of(circuit, "y") == 1

    def test_recursion_detected(self):
        src = """
        entity loopy is
          port (a : in std_logic; y : out std_logic);
        end entity;
        architecture rtl of loopy is begin
          u : loopy port map (a => a, y => y);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="recursive"):
            elaborate(parse_vhdl(src), top="loopy")

    def test_child_without_architecture_rejected(self):
        src = """
        entity ghost is
          port (a : in std_logic; y : out std_logic);
        end entity;
        entity top is
          port (a : in std_logic; y : out std_logic);
        end entity;
        architecture rtl of top is begin
          u : ghost port map (a => a, y => y);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="no architecture"):
            elaborate(parse_vhdl(src), top="top")

    def test_unconnected_entity_port_rejected(self):
        src = FULL_ADDER + """
        entity top is
          port (a, b : in std_logic; s : out std_logic);
        end entity;
        architecture rtl of top is
          signal co : std_logic;
        begin
          fa : full_adder port map (a => a, b => b, s => s, cout => co);
        end architecture;
        """
        with pytest.raises(ElaborationError, match="unconnected"):
            elaborate(parse_vhdl(src), top="top")

    def test_round_trip_through_writer(self):
        """The flattened hierarchy re-emits as flat VHDL and re-elaborates."""
        from repro.vhdl import write_vhdl

        circuit = elaborate(parse_vhdl(TWO_BIT_ADDER), top="adder2")
        again = elaborate(parse_vhdl(write_vhdl(circuit)))
        assert again.num_gates == circuit.num_gates
        assert again.num_edges == circuit.num_edges
