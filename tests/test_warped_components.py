"""Unit tests for Time Warp building blocks: LP, queues, GVT, messages."""

import pytest

from repro.circuit import GateType, parse_bench
from repro.circuit.gate import FALSE, TRUE, UNKNOWN
from repro.errors import SimulationError
from repro.sim.event import CAPTURE, SIG, STIM
from repro.warped.gvt import GVT_END, compute_gvt
from repro.warped.lp import MIN_KEY, LogicalProcess
from repro.warped.messages import ANTI, POSITIVE, Message
from repro.warped.queues import NodeQueue


def make_lp(gate_type="AND"):
    c = parse_bench(
        "INPUT(a)\nINPUT(b)\n"
        f"g = {gate_type}(a, b)\n"
        "q = NOT(g)\nOUTPUT(q)\n"
    )
    g = c.index_of("g")
    return c, LogicalProcess(c.gates[g], node=0)


def uid_gen():
    counter = [0]

    def next_uid():
        counter[0] += 1
        return counter[0]

    return next_uid


class TestMessage:
    def test_keys_and_sort(self):
        m = Message(5, SIG, 3, 2, 1, dest=7, uid=42)
        assert m.key == (5, SIG, 3, 2)
        assert m.sort_key == (5, SIG, 3, 2, 7, 42)

    def test_make_anti_mirrors_fields(self):
        m = Message(5, SIG, 3, 2, 1, dest=7, uid=42)
        anti = m.make_anti()
        assert anti.sign == ANTI and m.sign == POSITIVE
        assert anti.key == m.key and anti.uid == m.uid and anti.dest == m.dest


class TestLogicalProcess:
    def test_process_updates_input_copy_and_emits(self):
        c, lp = make_lp()
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        lp.process(Message(1, SIG, a, 0, TRUE, lp.gate.index, 1), nxt)
        assert lp.input_copy[a] == TRUE
        # AND(1, X) = X = initial output -> no emission yet
        assert lp.processed[-1].emissions == []
        rec = lp.process(Message(2, SIG, b, 0, TRUE, lp.gate.index, 2), nxt)
        assert lp.output_value == TRUE
        assert len(rec.emissions) == 1
        em = rec.emissions[0]
        assert em.time == 2 + lp.gate.delay
        assert em.value == TRUE

    def test_straggler_raises_at_lp_level(self):
        c, lp = make_lp()
        a = c.index_of("a")
        nxt = uid_gen()
        lp.process(Message(5, SIG, a, 0, TRUE, lp.gate.index, 1), nxt)
        with pytest.raises(SimulationError, match="straggler"):
            lp.process(Message(3, SIG, a, 0, FALSE, lp.gate.index, 2), nxt)

    def test_undo_restores_state(self):
        c, lp = make_lp()
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        lp.process(Message(1, SIG, a, 0, TRUE, lp.gate.index, 1), nxt)
        lp.process(Message(2, SIG, b, 0, TRUE, lp.gate.index, 2), nxt)
        lp.undo_last()
        assert lp.input_copy[b] == UNKNOWN
        assert lp.output_value == UNKNOWN
        assert lp.last_key == (1, SIG, a, 0)
        lp.undo_last()
        assert lp.input_copy[a] == UNKNOWN
        assert lp.last_key == MIN_KEY

    def test_undo_empty_history_raises(self):
        _, lp = make_lp()
        with pytest.raises(SimulationError, match="nothing to undo"):
            lp.undo_last()

    def test_emission_seq_not_rewound(self):
        c, lp = make_lp()
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        lp.process(Message(1, SIG, a, 0, TRUE, lp.gate.index, 1), nxt)
        rec = lp.process(Message(2, SIG, b, 0, TRUE, lp.gate.index, 2), nxt)
        n_before = rec.emissions[0].n
        lp.undo_last()
        rec2 = lp.process(Message(2, SIG, b, 0, TRUE, lp.gate.index, 3), nxt)
        assert rec2.emissions[0].n > n_before

    def test_processed_uids_tracking(self):
        c, lp = make_lp()
        a = c.index_of("a")
        nxt = uid_gen()
        lp.process(Message(1, SIG, a, 0, TRUE, lp.gate.index, 77), nxt)
        assert 77 in lp.processed_uids
        lp.undo_last()
        assert 77 not in lp.processed_uids

    def test_dff_capture_semantics(self):
        c = parse_bench("INPUT(a)\nff = DFF(a)\nq = NOT(ff)\nOUTPUT(q)\n")
        ff = c.index_of("ff")
        lp = LogicalProcess(c.gates[ff], node=0)
        a = c.index_of("a")
        nxt = uid_gen()
        assert lp.output_value == FALSE  # flip-flops power up reset
        # data input set to 0 first (the kernels never capture before
        # the reset cycle has initialised the data path)
        lp.process(Message(1, SIG, a, 0, FALSE, ff, 1), nxt)
        assert lp.processed[-1].emissions == []  # DFFs don't eval on data
        rec0 = lp.process(Message(3, SIG, a, 1, TRUE, ff, 2), nxt)
        assert rec0.emissions == []
        rec = lp.process(Message(10, CAPTURE, ff, 1, 0, ff, 3), nxt)
        assert lp.output_value == TRUE
        assert rec.emissions[0].time == 10 + c.gates[ff].delay
        rec2 = lp.process(Message(20, CAPTURE, ff, 2, 0, ff, 4), nxt)
        assert rec2.emissions == []  # data unchanged since last capture

    def test_stim_self_event_fans_out_same_key(self):
        c = parse_bench("INPUT(a)\ng = NOT(a)\nh = BUF(a)\nOUTPUT(g)\nOUTPUT(h)\n")
        a = c.index_of("a")
        lp = LogicalProcess(c.gates[a], node=0)
        nxt = uid_gen()
        rec = lp.process(Message(0, STIM, a, 0, TRUE, a, 1), nxt)
        assert lp.output_value == TRUE
        assert len(rec.emissions) == 2
        for em in rec.emissions:
            assert em.key == (0, STIM, a, 0)

    def test_stim_suppressed_when_value_unchanged(self):
        c = parse_bench("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n")
        a = c.index_of("a")
        lp = LogicalProcess(c.gates[a], node=0)
        nxt = uid_gen()
        lp.process(Message(0, STIM, a, 0, TRUE, a, 1), nxt)
        rec = lp.process(Message(10, STIM, a, 1, TRUE, a, 2), nxt)
        assert rec.emissions == []

    def test_fossil_collect_drops_old_history(self):
        c, lp = make_lp()
        a = c.index_of("a")
        nxt = uid_gen()
        for t, v in [(1, TRUE), (5, FALSE), (9, TRUE)]:
            lp.process(Message(t, SIG, a, t, v, lp.gate.index, t), nxt)
        freed = lp.fossil_collect(5)
        assert freed == 1
        assert [r.msg.time for r in lp.processed] == [5, 9]
        assert 1 not in lp.processed_uids

    def test_parallel_edges_deduplicated_in_sinks(self):
        from repro.circuit import CircuitGraph

        c = CircuitGraph()
        a = c.add_gate("a", GateType.INPUT)
        x = c.add_gate("x", GateType.XOR)
        y = c.add_gate("y", GateType.BUF)
        c.connect(a, x)
        c.connect(a, x)
        c.connect(a, y)
        c.mark_output(x)
        c.mark_output(y)
        c.freeze()
        lp = LogicalProcess(c.gates[a], node=0)
        assert lp._sink_list == [x, y]


class TestNodeQueue:
    def entry(self, t, uid, dest=0):
        return Message(t, SIG, 1, 0, TRUE, dest, uid)

    def test_orders_by_key(self):
        q = NodeQueue()
        q.push(self.entry(5, 1))
        q.push(self.entry(2, 2))
        q.push(self.entry(9, 3))
        assert [q.pop().time for _ in range(3)] == [2, 5, 9]

    def test_same_key_ordered_by_dest_then_uid(self):
        q = NodeQueue()
        q.push(Message(3, SIG, 1, 0, TRUE, 9, 5))
        q.push(Message(3, SIG, 1, 0, TRUE, 2, 9))
        q.push(Message(3, SIG, 1, 0, TRUE, 2, 3))
        popped = [q.pop() for _ in range(3)]
        assert [(m.dest, m.uid) for m in popped] == [(2, 3), (2, 9), (9, 5)]

    def test_annihilate_pending(self):
        q = NodeQueue()
        q.push(self.entry(1, 1))
        q.push(self.entry(2, 2))
        q.annihilate(1)
        assert not q.contains_uid(1)
        assert len(q) == 1
        assert q.pop().uid == 2

    def test_annihilate_missing_raises(self):
        q = NodeQueue()
        with pytest.raises(KeyError):
            q.annihilate(77)

    def test_min_time_skips_dead(self):
        q = NodeQueue()
        q.push(self.entry(1, 1))
        q.push(self.entry(5, 2))
        q.annihilate(1)
        assert q.min_time == 5

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            NodeQueue().pop()

    def test_bool_and_len(self):
        q = NodeQueue()
        assert not q and len(q) == 0
        q.push(self.entry(1, 1))
        assert q and len(q) == 1


class TestGVT:
    def test_end_when_nothing_outstanding(self):
        assert compute_gvt([NodeQueue()], []) == GVT_END

    def test_min_over_queues_and_flight(self):
        q1, q2 = NodeQueue(), NodeQueue()
        q1.push(Message(9, SIG, 1, 0, 1, 0, 1))
        q2.push(Message(4, SIG, 1, 0, 1, 0, 2))
        assert compute_gvt([q1, q2], [7]) == 4
        assert compute_gvt([q1, q2], [2]) == 2
