"""Warm worker rings: reuse, equivalence with the cold path, poisoning.

The load-bearing property is bit-identical committed output: a warm
ring re-running a job on recycled processes must produce exactly what
a cold :class:`ProcessTimeWarpSimulator` spawn produces — same final
values, same capture history, same committed event count.  Everything
the job server layers on top (caching, pooling) assumes it.
"""

from __future__ import annotations

import pytest

from repro.circuit.netlists import load_s27
from repro.errors import ConfigError, SimulationError
from repro.partition.registry import get_partitioner
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.backend import ProcessTimeWarpSimulator
from repro.warped.parallel.ring import WorkerRing

TRANSPORTS = ("queue", "shm")


@pytest.fixture(scope="module")
def world():
    circuit = load_s27()
    stimulus = RandomStimulus(
        circuit, num_cycles=12, period=100, seed=7, activity=0.5
    )
    assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 2)
    machine = VirtualMachine(
        num_nodes=2, gvt_interval=128, optimism_window=100
    )
    sequential = SequentialSimulator(circuit, stimulus).run()
    return circuit, assignment, stimulus, machine, sequential


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_warm_ring_matches_cold_and_sequential(world, transport):
    circuit, assignment, stimulus, machine, sequential = world
    cold = ProcessTimeWarpSimulator(
        circuit, assignment, stimulus, machine,
        timeout=60, transport=transport,
    ).run()
    with WorkerRing(2, transport=transport) as ring:
        pids = dict(ring.worker_pids)
        first = ring.run_job(circuit, assignment, stimulus, machine, timeout=60)
        second = ring.run_job(circuit, assignment, stimulus, machine, timeout=60)
        # Reuse, not respawn: same OS processes served both jobs.
        assert ring.worker_pids == pids
        assert ring.jobs_run == 2
    for result in (first, second):
        assert result.final_values == sequential.final_values
        assert result.committed_captures == sequential.committed_captures
        assert result.events_committed == cold.events_committed
        assert result.backend == "process"
        assert result.transport == transport


def test_many_repeat_jobs_on_shm(world):
    """Regression: the job-arming race.

    Job specs arrive over per-node queues, so one node used to start
    simulating — and sending — while a peer was still waiting for its
    own spec; the peer's arming drain then discarded live messages and
    the GVT ring could never balance (livelock).  The shm transport
    hit this on most runs.  Ten back-to-back jobs on one ring flush
    the race out if the arming barrier ever regresses.
    """
    circuit, assignment, stimulus, machine, sequential = world
    with WorkerRing(2, transport="shm") as ring:
        for _ in range(10):
            result = ring.run_job(
                circuit, assignment, stimulus, machine, timeout=30
            )
            assert result.final_values == sequential.final_values


def test_single_node_ring(world):
    circuit, _, stimulus, _, sequential = world
    assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 1)
    machine = VirtualMachine(num_nodes=1, gvt_interval=128)
    with WorkerRing(1) as ring:
        result = ring.run_job(circuit, assignment, stimulus, machine, timeout=30)
    assert result.final_values == sequential.final_values


def test_ring_validates_job(world):
    circuit, assignment, stimulus, machine, _ = world
    with WorkerRing(2) as ring:
        with pytest.raises(SimulationError, match="this ring"):
            ring.run_job(
                circuit,
                get_partitioner("Multilevel", seed=3).partition(circuit, 4),
                stimulus,
                VirtualMachine(num_nodes=4),
                timeout=30,
            )
        with pytest.raises(ConfigError, match="checkpoint"):
            ring.run_job(
                circuit, assignment, stimulus,
                VirtualMachine(
                    num_nodes=2, checkpoint_interval=50, gvt_interval=128
                ),
                timeout=30,
            )
        with pytest.raises(ConfigError, match="aggressive"):
            ring.run_job(
                circuit, assignment, stimulus,
                VirtualMachine(num_nodes=2, cancellation="lazy"),
                timeout=30,
            )
        # Validation failures must not poison the ring.
        assert ring.alive
        result = ring.run_job(circuit, assignment, stimulus, machine, timeout=30)
        assert result.num_nodes == 2


def test_timeout_poisons_ring(world):
    circuit, assignment, stimulus, machine, _ = world
    ring = WorkerRing(2).start()
    try:
        with pytest.raises(SimulationError, match="timed out"):
            ring.run_job(
                circuit, assignment, stimulus, machine, timeout=0.0001
            )
        assert not ring.alive
        with pytest.raises(SimulationError, match="dead"):
            ring.run_job(circuit, assignment, stimulus, machine, timeout=30)
    finally:
        ring.close()


def test_kill_tears_ring_down(world):
    circuit, assignment, stimulus, machine, _ = world
    ring = WorkerRing(2).start()
    try:
        assert ring.alive
        ring.kill()
        assert not ring.alive
        with pytest.raises(SimulationError, match="dead"):
            ring.run_job(circuit, assignment, stimulus, machine, timeout=30)
    finally:
        ring.close()


def test_close_is_idempotent_and_joins_workers(world):
    ring = WorkerRing(2).start()
    workers = list(ring._workers)
    ring.close()
    ring.close()
    assert all(not w.is_alive() for w in workers)
