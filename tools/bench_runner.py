#!/usr/bin/env python3
"""Run the pinned hot-path workloads and maintain the BENCH trajectory.

The repo root accumulates ``BENCH_<n>.json`` files — one per recorded
performance point, numbered monotonically (``BENCH_1.json`` is the
first). Each file holds the events/sec and peak-history measurements
of every workload/engine pair from ``benchmarks/bench_hotpath.py``,
so the sequence is the project's performance trajectory over time.

    # measure and print, no files touched
    python tools/bench_runner.py

    # gate: compare against the newest committed BENCH_<n>.json and
    # exit 1 if any engine lost more than 20% events/sec
    python tools/bench_runner.py --check

    # record: write the next BENCH_<n+1>.json (optionally --check first)
    python tools/bench_runner.py --record

    # CI smoke subset
    python tools/bench_runner.py --check --workloads s27 synthetic-s5378

Comparison is per workload/engine on ``events_per_sec``; pairs missing
from the baseline (new workloads) pass vacuously. The threshold is
deliberately loose (20%) because absolute throughput varies across
hosts — the gate catches order-of-magnitude mistakes and steady decay,
not single-digit noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")
SCHEMA_VERSION = 1


def trajectory(root: Path = REPO_ROOT) -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files under *root*, sorted by n."""
    entries = []
    for path in root.iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match:
            entries.append((int(match.group(1)), path))
    return sorted(entries)


def next_bench_path(root: Path = REPO_ROOT) -> Path:
    """Path of the next trajectory entry (``BENCH_1.json`` if none)."""
    entries = trajectory(root)
    n = entries[-1][0] + 1 if entries else 1
    return root / f"BENCH_{n}.json"


def compare_runs(
    baseline: dict, current: dict, threshold: float
) -> list[str]:
    """Regression descriptions (empty = clean).

    A workload/engine pair regresses when its current events/sec falls
    below ``(1 - threshold)`` of the baseline's. Pairs absent from the
    baseline are skipped — a new workload cannot regress.
    """
    failures: list[str] = []
    for workload, engines in current.get("workloads", {}).items():
        base_engines = baseline.get("workloads", {}).get(workload, {})
        for engine, record in engines.items():
            base = base_engines.get(engine)
            if base is None:
                continue
            base_rate = base["events_per_sec"]
            rate = record["events_per_sec"]
            if rate < (1.0 - threshold) * base_rate:
                failures.append(
                    f"{workload}/{engine}: {rate:,.0f} ev/s is "
                    f"{(1.0 - rate / base_rate) * 100:.1f}% below the "
                    f"baseline {base_rate:,.0f} ev/s "
                    f"(threshold {threshold * 100:.0f}%)"
                )
    return failures


def workload_modules() -> list:
    """Benchmark modules contributing workloads, in listing order.

    Each exposes ``WORKLOADS`` (name -> workload with an ``engines``
    tuple) and ``run_workload(workload, repeats=...)`` returning the
    per-engine measurement records.
    """
    import bench_hotpath
    import bench_serve

    return [bench_hotpath, bench_serve]


def all_workloads() -> dict:
    """name -> (module, workload) across every benchmark module."""
    table = {}
    for module in workload_modules():
        for name, workload in module.WORKLOADS.items():
            if name in table:
                raise SystemExit(f"duplicate workload name {name!r}")
            table[name] = (module, workload)
    return table


def measure(names: list[str], repeats: int) -> dict:
    """Run the named workloads; returns a trajectory-entry payload."""
    table = all_workloads()
    workloads = {}
    for name in names:
        if name not in table:
            raise SystemExit(
                f"unknown workload {name!r}; available: {sorted(table)}"
            )
        module, workload = table[name]
        t0 = time.perf_counter()
        workloads[name] = module.run_workload(workload, repeats=repeats)
        print(
            f"  {name}: {time.perf_counter() - t0:.1f}s wall "
            f"({repeats} repeats x {len(workload.engines)} engines)",
            file=sys.stderr,
        )
    return {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "workloads": workloads,
    }


def render(entry: dict) -> str:
    lines = []
    for workload, engines in entry["workloads"].items():
        for engine, record in engines.items():
            peak = record.get("peak_history")
            peak_text = f"  peak_history={peak}" if peak is not None else ""
            lines.append(
                f"{workload:18s} {engine:10s} "
                f"{record['events_per_sec']:>12,.0f} ev/s "
                f"({record['events']} events in "
                f"{record['elapsed_sec']:.3f}s){peak_text}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="hot-path benchmark runner / regression gate"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="subset to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workloads and exit"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs the newest BENCH_<n>.json",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="write the measurements as the next BENCH_<n>.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed events/sec loss fraction (default 0.20)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per engine, best-of (default 3)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also dump the measurement JSON to this path",
    )
    args = parser.parse_args(argv)

    table = all_workloads()

    if args.list:
        for name, (_, workload) in sorted(table.items()):
            print(
                f"{name:18s} {workload.circuit}@{workload.scale} "
                f"k={workload.k} engines={','.join(workload.engines)}"
            )
        return 0

    names = args.workloads or sorted(table)
    entry = measure(names, args.repeats)
    print(render(entry))

    if args.output is not None:
        args.output.write_text(json.dumps(entry, indent=2) + "\n")

    status = 0
    if args.check:
        entries = trajectory()
        if not entries:
            print("check: no BENCH_<n>.json baseline yet — passing")
        else:
            n, baseline_path = entries[-1]
            baseline = json.loads(baseline_path.read_text())
            failures = compare_runs(baseline, entry, args.threshold)
            if failures:
                print(f"REGRESSION vs {baseline_path.name}:")
                for failure in failures:
                    print(f"  {failure}")
                status = 1
            else:
                print(f"check: no regression vs {baseline_path.name}")

    if args.record and status == 0:
        path = next_bench_path()
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        print(f"recorded {path.name}")

    return status


if __name__ == "__main__":
    raise SystemExit(main())
