#!/usr/bin/env python3
"""Differential backend comparison: virtual vs. process vs. sequential.

Runs the same circuit / partition / stimulus through the sequential
oracle, the deterministic virtual-machine Time Warp kernel, and the
real multiprocess backend, then reports whether the committed results
agree and how the backends' dynamics compare:

    python tools/diff_backends.py --circuit s27 -k 4
    python tools/diff_backends.py --circuit s5378 --scale 0.08 -k 6
    python tools/diff_backends.py --gates 150 --dffs 12 --seed 7 -k 4 \
        --algorithm Random --window 50

Exit status is non-zero on any disagreement, so the tool doubles as a
scriptable differential check (it is the long-form companion of
``tests/test_differential_backends.py``).
"""

from __future__ import annotations

import argparse
import sys

from repro.circuit import GeneratorSpec, generate_circuit
from repro.circuit.netlists import load_s27
from repro.harness.config import ALGORITHMS, ExperimentConfig
from repro.harness.experiment import ExperimentRunner
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine


def build_world(args):
    """(circuit, stimulus) from either a benchmark name or a generator."""
    if args.circuit == "s27":
        circuit = load_s27()
    elif args.circuit is not None:
        runner = ExperimentRunner(
            ExperimentConfig.from_env(scale=args.scale)
            if args.scale
            else ExperimentConfig.from_env()
        )
        return runner.circuit(args.circuit), runner.stimulus(args.circuit)
    else:
        circuit = generate_circuit(
            GeneratorSpec(
                name="diff",
                num_inputs=6,
                num_outputs=6,
                num_gates=args.gates,
                num_dffs=args.dffs,
                depth=8,
                seed=args.seed,
            )
        )
    stimulus = RandomStimulus(
        circuit, num_cycles=args.cycles, period=30, seed=args.seed
    )
    return circuit, stimulus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default=None,
                        choices=["s27", "s5378", "s9234", "s15850"],
                        help="benchmark circuit (default: generated)")
    parser.add_argument("--scale", type=float, default=None,
                        help="scale for the big benchmark circuits")
    parser.add_argument("--gates", type=int, default=120)
    parser.add_argument("--dffs", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=15)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("-k", "--nodes", type=int, default=4, dest="k")
    parser.add_argument("--algorithm", default="Multilevel", choices=ALGORITHMS)
    parser.add_argument("--window", type=int, default=None,
                        help="optimism window (default: unbounded)")
    parser.add_argument("--gvt-interval", type=int, default=64)
    args = parser.parse_args(argv)

    circuit, stimulus = build_world(args)
    print(f"circuit: {circuit.name} ({circuit.num_gates} gates), "
          f"k={args.k}, {args.algorithm}")

    sequential = SequentialSimulator(circuit, stimulus).run()
    assignment = get_partitioner(args.algorithm, seed=3).partition(
        circuit, args.k
    )
    machine = VirtualMachine(
        num_nodes=args.k,
        optimism_window=args.window,
        gvt_interval=args.gvt_interval,
    )
    virtual = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    process = ProcessTimeWarpSimulator(
        circuit, assignment, stimulus, machine
    ).run()

    checks = {
        "virtual.final_values == sequential":
            virtual.final_values == sequential.final_values,
        "process.final_values == sequential":
            process.final_values == sequential.final_values,
        "virtual.captures == sequential":
            virtual.committed_captures == sequential.committed_captures,
        "process.captures == virtual":
            process.committed_captures == virtual.committed_captures,
        "events_committed identical":
            process.events_committed == virtual.events_committed,
    }
    for label, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")

    print(f"\n{'':20s}{'virtual':>12s}{'process':>12s}")
    for field in ("events_processed", "events_rolled_back", "rollbacks",
                  "app_messages", "anti_messages", "gvt_rounds"):
        print(f"{field:20s}{getattr(virtual, field):>12d}"
              f"{getattr(process, field):>12d}")
    print(f"{'wall-clock (s)':20s}{'(modelled)':>12s}"
          f"{process.execution_time:>12.3f}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
