#!/usr/bin/env python3
"""Long-running kernel fuzz: all engines, all policies, random circuits.

Not part of the test suite (hypothesis covers the same invariants with
bounded examples); run this for release-grade confidence:

    python tools/fuzz_kernels.py [seconds] [seed] [--corpus DIR]
                                 [--process-fraction F]

Every iteration builds one serialisable *case* — a random sequential
circuit, a random partitioner, and a random Time Warp policy mix
(window / cancellation / checkpointing / migration) — and replays it
through ``repro.harness.regression.run_case``, which checks every
engine against the sequential oracle.  A quarter of the iterations add
the conservative kernel; a slice (``--process-fraction``, default 5%)
runs the real multiprocess backend instead.

With ``--corpus DIR``, every failing case is written there as JSON in
the exact format ``tests/test_regression_corpus.py`` replays — promote
findings by committing the file under ``tests/corpus/``.
"""

import argparse
import time
import traceback

from repro.harness.regression import run_case, write_case
from repro.partition.registry import all_partitioners
from repro.utils.rng import make_rng


def random_case(rng, names, *, process: bool) -> dict:
    """Draw one fuzz case. Process-backend cases stick to the policies
    that backend supports (aggressive cancellation, incremental state
    saving, no migration)."""
    num_gates = int(rng.integers(25, 220))
    case = {
        "description": "fuzz-generated",
        "spec": {
            "name": "fuzz",
            "num_inputs": int(rng.integers(2, 8)),
            "num_outputs": int(rng.integers(1, 6)),
            "num_gates": num_gates,
            "num_dffs": int(rng.integers(0, 16)),
            "depth": int(rng.integers(3, 12)),
            "unary_fraction": float(rng.uniform(0, 0.5)),
            "locality": float(rng.uniform(0.5, 1.0)),
            "seed": int(rng.integers(0, 2**31)),
            "delay_model": ["unit", "typed", "random"][int(rng.integers(0, 3))],
        },
        "stimulus": {
            "num_cycles": int(rng.integers(6, 30)),
            "period": int(rng.integers(10, 120)),
            "seed": int(rng.integers(0, 2**31)),
        },
        "partitioner": names[int(rng.integers(0, len(names)))],
        "partitioner_seed": int(rng.integers(0, 1000)),
        "k": int(rng.integers(2, min(7, num_gates))),
        "machine": {
            "optimism_window": (
                None if rng.random() < 0.4 else int(rng.integers(5, 200))
            ),
            "gvt_interval": int(rng.integers(32, 1024)),
        },
        "engines": ["timewarp"],
    }
    if process:
        # Smaller worlds: each case forks k OS processes — and runs
        # them on BOTH wire transports, so every fuzzed configuration
        # doubles as a queue-vs-shm differential (final values and
        # captures against sequential, committed counts against each
        # other; see run_case).
        case["spec"]["num_gates"] = int(rng.integers(25, 90))
        case["stimulus"]["num_cycles"] = int(rng.integers(4, 12))
        case["k"] = int(rng.integers(2, 5))
        case["engines"] = ["process", "process-shm"]
        # Half the process cases also run on a warm worker ring (the
        # job server's execution path), holding warm-pool results to
        # the cold engines' exact committed output.
        if rng.random() < 0.5:
            case["engines"].append(
                "served-shm" if rng.random() < 0.5 else "served"
            )
    else:
        case["machine"].update(
            cancellation="lazy" if rng.random() < 0.4 else "aggressive",
            checkpoint_interval=(
                None if rng.random() < 0.5 else int(rng.integers(1, 32))
            ),
            migration_threshold=(
                None if rng.random() < 0.5 else float(rng.uniform(1.2, 3.0))
            ),
        )
        if rng.random() < 0.25:
            case["engines"].append("conservative")
    return case


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("seconds", nargs="?", type=float, default=120.0)
    parser.add_argument("seed", nargs="?", type=int, default=99)
    parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="write each failing case as replayable JSON under DIR",
    )
    parser.add_argument(
        "--process-fraction", type=float, default=0.05,
        help="fraction of iterations run on the multiprocess backend",
    )
    args = parser.parse_args()

    rng = make_rng(args.seed)
    names = sorted(all_partitioners())
    failures = 0
    runs = 0
    start = time.time()
    while time.time() - start < args.seconds:
        case = random_case(
            rng, names, process=rng.random() < args.process_fraction
        )
        try:
            mismatches = run_case(case)
        except Exception:
            mismatches = [f"crash:\n{traceback.format_exc()}"]
        runs += len(case["engines"])
        if mismatches:
            failures += 1
            case["description"] = "; ".join(
                m.splitlines()[0] for m in mismatches
            )
            print(f"FAIL {case['engines']}: {mismatches}", flush=True)
            if args.corpus:
                path = write_case(
                    case, args.corpus, f"fuzz-{args.seed}-{runs}"
                )
                print(f"  wrote {path}", flush=True)
        if runs % 200 == 0:
            print(
                f"... {runs} runs, {failures} failures, "
                f"{time.time() - start:.0f}s",
                flush=True,
            )
    print(f"done: {runs} runs, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
