#!/usr/bin/env python3
"""Long-running kernel fuzz: all engines, all policies, random circuits.

Not part of the test suite (hypothesis covers the same invariants with
bounded examples); run this for release-grade confidence:

    python tools/fuzz_kernels.py [seconds] [seed]

Every iteration builds a random sequential circuit, partitions it with
a random strategy, runs the Time Warp kernel under a random policy mix
(window / cancellation / checkpointing / migration) and checks the
final signal values against the sequential oracle; a quarter of the
iterations also run the conservative kernel.
"""

import sys
import time

from repro.circuit import GeneratorSpec, generate_circuit
from repro.conservative import ConservativeSimulator
from repro.partition.registry import all_partitioners, get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.utils.rng import make_rng
from repro.warped import TimeWarpSimulator, VirtualMachine


def main() -> int:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 99
    rng = make_rng(seed)
    names = sorted(all_partitioners())
    failures = 0
    runs = 0
    start = time.time()
    while time.time() - start < budget:
        spec = GeneratorSpec(
            "fuzz",
            int(rng.integers(2, 8)),
            int(rng.integers(1, 6)),
            int(rng.integers(25, 220)),
            int(rng.integers(0, 16)),
            depth=int(rng.integers(3, 12)),
            unary_fraction=float(rng.uniform(0, 0.5)),
            locality=float(rng.uniform(0.5, 1.0)),
            seed=int(rng.integers(0, 2**31)),
            delay_model=["unit", "typed", "random"][int(rng.integers(0, 3))],
        )
        circuit = generate_circuit(spec)
        stimulus = RandomStimulus(
            circuit,
            num_cycles=int(rng.integers(6, 30)),
            period=int(rng.integers(10, 120)),
            seed=int(rng.integers(0, 2**31)),
        )
        sequential = SequentialSimulator(circuit, stimulus).run()
        k = int(rng.integers(2, min(7, circuit.num_gates)))
        name = names[int(rng.integers(0, len(names)))]
        assignment = get_partitioner(
            name, seed=int(rng.integers(0, 1000))
        ).partition(circuit, k)
        machine = VirtualMachine(
            num_nodes=k,
            optimism_window=(
                None if rng.random() < 0.4 else int(rng.integers(5, 200))
            ),
            cancellation="lazy" if rng.random() < 0.4 else "aggressive",
            checkpoint_interval=(
                None if rng.random() < 0.5 else int(rng.integers(1, 32))
            ),
            migration_threshold=(
                None if rng.random() < 0.5 else float(rng.uniform(1.2, 3.0))
            ),
            gvt_interval=int(rng.integers(32, 1024)),
        )
        optimistic = TimeWarpSimulator(
            circuit, assignment, stimulus, machine
        ).run()
        runs += 1
        if optimistic.final_values != sequential.final_values:
            failures += 1
            print(f"TW FAIL: {spec} {name} k={k} {machine}", flush=True)
        if rng.random() < 0.25:
            conservative = ConservativeSimulator(
                circuit, assignment, stimulus, VirtualMachine(num_nodes=k)
            ).run()
            runs += 1
            if conservative.final_values != sequential.final_values:
                failures += 1
                print(f"CMB FAIL: {spec} {name} k={k}", flush=True)
        if runs % 200 == 0:
            print(
                f"... {runs} runs, {failures} failures, "
                f"{time.time() - start:.0f}s",
                flush=True,
            )
    print(f"done: {runs} runs, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
