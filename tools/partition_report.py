#!/usr/bin/env python3
"""Per-partitioner scorecard: static cut quality joined with traced
Time Warp dynamics — the analogue of the paper's Tables 2-4, with the
rollback columns *cascade-attributed* (every rollback in the trace is
chained to the straggler that rooted it, and the wasted-event totals
are asserted to reconcile exactly with the kernel's counters before a
row is printed).

    python tools/partition_report.py                       # s27 x 4 nodes
    python tools/partition_report.py --circuit s9234 --nodes 8 --scale 0.12
    python tools/partition_report.py --json scorecard.json

Runs the virtual (modelled-cluster) backend so rows are deterministic
for a fixed seed set.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuit.iscas89 import load_benchmark
from repro.harness.config import ALGORITHMS
from repro.obs import (
    TraceWriter,
    analyze_trace,
    read_trace,
    render_analysis,
    render_scorecard,
    scorecard_row,
)
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus
from repro.warped import TimeWarpSimulator, VirtualMachine


def build_scorecard(
    circuit_name: str,
    nodes: int,
    *,
    scale: float = 1.0,
    num_cycles: int = 40,
    period: int = 100,
    stimulus_seed: int = 7,
    partition_seed: int = 3,
    circuit_seed: int = 2000,
    gvt_interval: int = 64,
    algorithms: tuple[str, ...] = ALGORITHMS,
    trace_dir: str | None = None,
    forensics: bool = False,
    migration_threshold: float | None = None,
    migration_fraction: float = 0.05,
) -> tuple[list[dict], list[str]]:
    """One traced virtual run per partitioner; returns (rows, reports).

    With ``migration_threshold`` set, every static row is followed by a
    second ``<algorithm>+adaptive`` row from the same partition rerun
    with runtime LP migration enabled, so the table reads as paired
    static/adaptive comparisons.  The default (``None``) output is
    unchanged.
    """
    circuit = load_benchmark(circuit_name, scale=scale, seed=circuit_seed)
    stimulus = RandomStimulus(
        circuit, num_cycles=num_cycles, period=period, seed=stimulus_seed
    )
    rows: list[dict] = []
    reports: list[str] = []
    for algorithm in algorithms:
        assignment = get_partitioner(
            algorithm, seed=partition_seed
        ).partition(circuit, nodes)
        variants = [(algorithm, VirtualMachine(
            num_nodes=nodes, gvt_interval=gvt_interval
        ))]
        if migration_threshold is not None:
            variants.append((f"{algorithm}+adaptive", VirtualMachine(
                num_nodes=nodes, gvt_interval=gvt_interval,
                migration_threshold=migration_threshold,
                migration_fraction=migration_fraction,
            )))
        for label, machine in variants:
            if trace_dir is not None:
                trace_path = str(
                    Path(trace_dir) / f"{circuit_name}.{label}.jsonl"
                )
            else:
                import tempfile

                trace_path = str(
                    Path(tempfile.mkdtemp(prefix="partition_report."))
                    / f"{label}.jsonl"
                )
            with TraceWriter(trace_path) as tracer:
                result = TimeWarpSimulator(
                    circuit, assignment, stimulus, machine, tracer=tracer
                ).run()
            records = read_trace(trace_path)
            # scorecard_row raises AssertionError unless every rollback
            # is cascade-attributed and wasted totals reconcile exactly.
            row = scorecard_row(result, assignment, records)
            row["algorithm"] = label
            rows.append(row)
            if forensics:
                reports.append(render_analysis(
                    analyze_trace(
                        records, circuit=circuit, assignment=assignment,
                        cost_model=machine.cost_model,
                    ),
                    title=f"{circuit_name} / {label} x{nodes}",
                ))
    return rows, reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s27",
                        choices=["s27", "s5378", "s9234", "s15850"])
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="circuit scale (s27 ships full-size only)")
    parser.add_argument("--cycles", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7,
                        help="stimulus seed (fixed => deterministic rows)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="keep the per-partitioner traces here")
    parser.add_argument("--forensics", action="store_true",
                        help="print the full per-run forensics report too")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the rows as JSON (- for stdout)")
    parser.add_argument("--adaptive", type=float, default=None, metavar="R",
                        help="add an <algorithm>+adaptive row per "
                             "partitioner, rerun with runtime LP "
                             "migration at busy-window ratio R")
    parser.add_argument("--migration-fraction", type=float, default=0.05,
                        metavar="F",
                        help="LP fraction shed per adaptive decision")
    args = parser.parse_args(argv)
    if args.trace_dir is not None:
        Path(args.trace_dir).mkdir(parents=True, exist_ok=True)
    rows, reports = build_scorecard(
        args.circuit, args.nodes,
        scale=args.scale, num_cycles=args.cycles,
        stimulus_seed=args.seed, trace_dir=args.trace_dir,
        forensics=args.forensics,
        migration_threshold=args.adaptive,
        migration_fraction=args.migration_fraction,
    )
    title = f"{args.circuit} x{args.nodes} nodes, {args.cycles} cycles"
    print(render_scorecard(rows, title=title))
    for report in reports:
        print()
        print(report)
    if args.json is not None:
        payload = json.dumps(rows, indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
