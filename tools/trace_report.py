#!/usr/bin/env python3
"""Summarize a JSONL simulation trace (see ``repro.obs``):

    python tools/trace_report.py artifacts/s27.trace.jsonl
    python tools/trace_report.py --json run.jsonl      # machine-readable
    python tools/trace_report.py --compare old.jsonl new.jsonl

Works on a merged trace or on a single worker shard; see DESIGN.md §7
for the record schema.  ``--compare`` diffs two runs' digests and exits
nonzero when the second run regressed by more than 20% on rollbacks or
GVT-round latency.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.obs import read_trace, render_trace_summary, summarize_trace
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import read_trace, render_trace_summary, summarize_trace

#: Relative growth beyond which --compare flags a metric as regressed.
REGRESSION_THRESHOLD = 0.20

#: Metrics --compare watches: label -> digest extractor.
_COMPARE_METRICS = (
    ("rollbacks", lambda s: float(s["rollbacks_total"])),
    ("rolled-back depth p90", lambda s: s["rollback_depth"]["p90"]),
    ("gvt latency p90 (s)", lambda s: s["gvt_latency"]["p90"]),
    ("gvt rounds", lambda s: float(s["gvt_rounds"])),
)


def compare_traces(path_a: str, path_b: str) -> tuple[str, bool]:
    """Diff two runs' digests; returns (report, any_regression).

    A metric regresses when run B exceeds run A by more than
    ``REGRESSION_THRESHOLD`` (missing samples on either side are
    reported but never flagged — absence is not a regression).
    """
    a = summarize_trace(read_trace(path_a))
    b = summarize_trace(read_trace(path_b))
    lines = [
        f"compare: A={path_a}  B={path_b}",
        f"{'metric':<24s} {'A':>12s} {'B':>12s} {'delta':>9s}",
    ]
    regressed = False
    for label, extract in _COMPARE_METRICS:
        va, vb = extract(a), extract(b)
        if va is None or vb is None:
            lines.append(f"{label:<24s} {'-':>12s} {'-':>12s} {'n/a':>9s}")
            continue
        if va > 0:
            delta = (vb - va) / va
            delta_s = f"{delta:+8.1%}"
        else:
            delta = float("inf") if vb > 0 else 0.0
            delta_s = "   +inf%" if vb > 0 else "   +0.0%"
        flag = ""
        if delta > REGRESSION_THRESHOLD:
            regressed = True
            flag = "  << REGRESSION"
        lines.append(f"{label:<24s} {va:>12.4g} {vb:>12.4g} {delta_s:>9s}{flag}")
    lines.append(
        "verdict: REGRESSED (>{:.0%} growth)".format(REGRESSION_THRESHOLD)
        if regressed
        else "verdict: OK (within {:.0%})".format(REGRESSION_THRESHOLD)
    )
    return "\n".join(lines), regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    parser.add_argument("--compare", action="store_true",
                        help="diff exactly two traces (A then B); exit 1 "
                        "when B regressed >20%% on rollbacks/GVT latency")
    args = parser.parse_args(argv)
    if args.compare:
        if len(args.trace) != 2:
            parser.error("--compare takes exactly two trace files: A B")
        report, regressed = compare_traces(args.trace[0], args.trace[1])
        print(report)
        return 1 if regressed else 0
    for path in args.trace:
        summary = summarize_trace(read_trace(path))
        if args.json:
            print(json.dumps(summary, indent=2, default=str))
        else:
            print(render_trace_summary(summary, title=path))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_report.py t.jsonl | head`
        sys.exit(0)
