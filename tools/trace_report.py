#!/usr/bin/env python3
"""Summarize a JSONL simulation trace (see ``repro.obs``):

    python tools/trace_report.py artifacts/s27.trace.jsonl
    python tools/trace_report.py --json run.jsonl      # machine-readable

Works on a merged trace or on a single worker shard; see DESIGN.md §7
for the record schema.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.obs import read_trace, render_trace_summary, summarize_trace
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import read_trace, render_trace_summary, summarize_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="+", help="JSONL trace file(s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    args = parser.parse_args(argv)
    for path in args.trace:
        summary = summarize_trace(read_trace(path))
        if args.json:
            print(json.dumps(summary, indent=2, default=str))
        else:
            print(render_trace_summary(summary, title=path))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_report.py t.jsonl | head`
        sys.exit(0)
