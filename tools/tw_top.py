#!/usr/bin/env python3
"""``top`` for a running Time Warp: tail the per-node live-status
snapshots the process backend writes and render a refreshing dashboard.

Start a run with snapshots enabled, then watch it:

    python -m repro run --backend process --live-status /tmp/run.status &
    python tools/tw_top.py /tmp/run.status

Each worker atomically refreshes ``<base>.node<i>`` (one JSON line)
every GVT round, so the dashboard needs no IPC with the simulation —
it just re-reads small files.  Rendering is plain ANSI (clear + home
between frames); ``--once`` prints a single frame with no escape codes
and exits, which is what CI's no-TTY smoke test runs.
"""

from __future__ import annotations

import argparse
import glob
import json
import re
import sys
import time

_NODE_RE = re.compile(r"\.node(\d+)$")

#: A snapshot older than this (vs. the newest one) renders as STALE.
_STALE_AFTER = 2.0


def read_snapshots(base: str) -> dict[int, dict]:
    """Parse the ``<base>.node<i>`` snapshots of the *newest* run.

    Every snapshot carries the run id of the simulation that wrote it.
    When a status base is reused, files from different runs can coexist
    for a moment (a new run clears stale files at start, but a node of
    the old run may still be flushing its last snapshot) — so group by
    run id and keep only the run whose snapshots are freshest.  Nodes
    of a dead earlier run therefore never haunt the dashboard.
    """
    snapshots: dict[int, dict] = {}
    for path in glob.glob(f"{base}.node*"):
        match = _NODE_RE.search(path)
        if not match:
            continue
        try:
            with open(path) as fh:
                snapshots[int(match.group(1))] = json.loads(fh.read())
        except (OSError, ValueError):
            continue  # mid-replace or partial file: skip this frame
    runs: dict[str, float] = {}
    for snap in snapshots.values():
        run = snap.get("run", "")
        runs[run] = max(runs.get(run, 0.0), snap.get("ts", 0.0))
    if len(runs) > 1:
        newest = max(runs, key=lambda run: runs[run])
        snapshots = {
            node: snap
            for node, snap in snapshots.items()
            if snap.get("run", "") == newest
        }
    return snapshots


def render_frame(
    snapshots: dict[int, dict],
    rates: dict[int, float],
    *,
    clock: float,
) -> str:
    """One dashboard frame as plain text."""
    newest = max((s.get("ts", 0.0) for s in snapshots.values()), default=0.0)
    lines = [
        f"tw_top — {len(snapshots)} node(s), "
        + time.strftime("%H:%M:%S", time.localtime(clock)),
        f"{'node':>4s} {'state':<6s} {'gvt':>9s} {'events':>9s} "
        f"{'ev/s':>8s} {'rb':>6s} {'wasted':>7s} {'antis':>6s} "
        f"{'util':>6s} {'inbox':>6s} {'lps':>5s}",
    ]
    totals = {"events": 0, "rollbacks": 0, "rolled_back": 0, "antis": 0}
    for node in sorted(snapshots):
        snap = snapshots[node]
        if snap.get("done"):
            state = "done"
        elif newest - snap.get("ts", 0.0) > _STALE_AFTER:
            state = "stale"
        else:
            state = "run"
        gvt = snap.get("gvt")
        wall = snap.get("wall") or 0.0
        util = (snap.get("busy") or 0.0) / wall if wall > 0 else 0.0
        rate = rates.get(node)
        lines.append(
            f"{node:>4d} {state:<6s} "
            f"{'-' if gvt is None else format(gvt, '>9.0f'):>9s} "
            f"{snap.get('events', 0):>9d} "
            f"{'-' if rate is None else format(rate, '.0f'):>8s} "
            f"{snap.get('rollbacks', 0):>6d} "
            f"{snap.get('rolled_back', 0):>7d} "
            f"{snap.get('antis', 0):>6d} "
            f"{util:>6.0%} "
            f"{'-' if snap.get('inbox') is None else snap['inbox']:>6} "
            f"{snap.get('num_lps', 0):>5d}"
        )
        for key in totals:
            totals[key] += snap.get(key, 0) or 0
    events = totals["events"]
    waste = totals["rolled_back"] / events if events else 0.0
    lines.append(
        f"total: {events} events, {totals['rollbacks']} rollbacks "
        f"({totals['rolled_back']} events wasted, {waste:.1%}), "
        f"{totals['antis']} anti-messages"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("status_base",
                        help="live-status base path (the --live-status value)")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="refresh period in seconds (default 0.5)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame without escape codes and exit "
                        "(CI / no-TTY mode)")
    args = parser.parse_args(argv)

    previous: dict[int, tuple[float, int]] = {}

    def frame() -> tuple[str, dict[int, dict]]:
        snapshots = read_snapshots(args.status_base)
        now = time.time()
        rates: dict[int, float] = {}
        for node, snap in snapshots.items():
            events = int(snap.get("events", 0))
            if node in previous:
                t0, e0 = previous[node]
                if now > t0 and events >= e0:
                    rates[node] = (events - e0) / (now - t0)
            previous[node] = (now, events)
        return render_frame(snapshots, rates, clock=now), snapshots

    if args.once:
        text, snapshots = frame()
        if not snapshots:
            print(f"tw_top: no snapshots at {args.status_base}.node*",
                  file=sys.stderr)
            return 1
        print(text)
        return 0

    try:
        while True:
            text, snapshots = frame()
            sys.stdout.write("\x1b[H\x1b[2J")  # home + clear
            if snapshots:
                print(text)
                if all(s.get("done") for s in snapshots.values()):
                    print("all nodes quiescent — exiting")
                    return 0
            else:
                print(f"waiting for snapshots at {args.status_base}.node* ...")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
